"""Data import/export: CSV, JSON graphs, Cypher dump scripts."""

from repro.io.csv_io import (
    read_csv_rows,
    read_driving_table,
    read_graph_csv,
    write_csv,
    write_graph_csv,
)
from repro.io.cypher_script import dump_script, load_script, save_script
from repro.io.graph_json import load_graph, save_graph

__all__ = [
    "dump_script",
    "load_graph",
    "load_script",
    "read_csv_rows",
    "read_driving_table",
    "read_graph_csv",
    "save_graph",
    "save_script",
    "write_csv",
    "write_graph_csv",
]
