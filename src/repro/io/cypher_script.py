"""Dump a graph as a Cypher CREATE script (and reload it).

A portable, human-readable alternative to the JSON format: the dump is
a sequence of ``CREATE`` statements any revised-dialect engine can
replay.  Nodes are emitted first with a temporary ``_dump_id`` property
used to reconnect relationships, which a final statement removes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.errors import LoadError
from repro.graph.model import GraphSnapshot
from repro.graph.store import GraphStore
from repro.parser.unparse import _ident, _string  # canonical quoting


def _literal(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return _string(value)
    if isinstance(value, list):
        return "[" + ", ".join(_literal(item) for item in value) + "]"
    if isinstance(value, float):
        text = repr(value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    return repr(value)


def _props(mapping: dict, extra: dict | None = None) -> str:
    merged = dict(mapping)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ", ".join(
        f"{_ident(key)}: {_literal(value)}"
        for key, value in sorted(merged.items())
    )
    return f" {{{inner}}}"


def dump_script(graph: GraphStore | GraphSnapshot) -> str:
    """Render the graph as a replayable Cypher script."""
    snapshot = graph.snapshot() if isinstance(graph, GraphStore) else graph
    lines: list[str] = [
        "// Cypher dump; replay with the revised dialect "
        "(python -m repro script.cypher)"
    ]
    for node_id in sorted(snapshot.nodes):
        labels = "".join(
            f":{_ident(label)}"
            for label in sorted(snapshot.labels.get(node_id, frozenset()))
        )
        props = _props(
            dict(snapshot.node_properties.get(node_id, {})),
            {"_dump_id": node_id},
        )
        lines.append(f"CREATE ({labels}{props});")
    for rel_id in sorted(snapshot.relationships):
        source = snapshot.source[rel_id]
        target = snapshot.target[rel_id]
        if source not in snapshot.nodes or target not in snapshot.nodes:
            continue  # dangling (legacy state): not representable
        props = _props(dict(snapshot.rel_properties.get(rel_id, {})))
        lines.append(
            f"MATCH (a {{_dump_id: {source}}}), (b {{_dump_id: {target}}}) "
            f"CREATE (a)-[:{_ident(snapshot.types[rel_id])}{props}]->(b);"
        )
    lines.append("MATCH (n) REMOVE n._dump_id;")
    return "\n".join(lines) + "\n"


def save_script(graph: GraphStore | GraphSnapshot, path: str | Path) -> None:
    """Write the CREATE script to *path*."""
    try:
        Path(path).write_text(dump_script(graph), encoding="utf-8")
    except OSError as error:
        raise LoadError(f"cannot write script {path}: {error}") from error


def load_script(path: str | Path) -> GraphStore:
    """Replay a script written by :func:`save_script` into a new store."""
    from repro.session import Graph

    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise LoadError(f"cannot read script {path}: {error}") from error
    graph = Graph("revised")
    for statement in split_statements(text):
        graph.run(statement)
    graph.store.commit_to(0)
    return graph.store


def split_statements(text: str) -> list[str]:
    """Split a script on top-level ``;`` (string/comment aware)."""
    statements: list[str] = []
    current: list[str] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char in "'\"`":
            quote = char
            current.append(char)
            index += 1
            while index < length:
                current.append(text[index])
                if text[index] == "\\" and quote != "`" and index + 1 < length:
                    current.append(text[index + 1])
                    index += 2
                    continue
                if text[index] == quote:
                    index += 1
                    break
                index += 1
            continue
        if char == "/" and text[index : index + 2] == "//":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if char == "/" and text[index : index + 2] == "/*":
            end = text.find("*/", index + 2)
            index = length if end == -1 else end + 2
            continue
        if char == ";":
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
            index += 1
            continue
        current.append(char)
        index += 1
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements
