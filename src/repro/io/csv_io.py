"""CSV import/export.

The paper's user survey singles out one dominant MERGE workload:
populating a graph from relational/CSV exports ("it is a common
practice to input nodes first and relationships later", Example 3).
This module supports that workflow twice over:

* :func:`read_csv_rows` backs the ``LOAD CSV`` clause (values stay
  strings, empty fields become null -- the nulls of Example 5 arise
  naturally this way);
* :func:`read_driving_table` loads a CSV directly as a
  :class:`~repro.runtime.table.DrivingTable` with optional numeric
  coercion, for feeding pre-populated tables into update clauses
  exactly like the paper's examples do.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable

from repro.errors import LoadError
from repro.runtime.table import DrivingTable


def read_csv_rows(
    path: str | Path,
    *,
    with_headers: bool = False,
    delimiter: str = ",",
) -> list:
    """Read a CSV file as LOAD CSV does.

    With headers each row becomes a map (missing/empty fields are
    null); without headers each row is a list of strings.
    """
    try:
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            rows = list(reader)
    except OSError as error:
        raise LoadError(f"cannot read CSV file {path}: {error}") from error
    if not with_headers:
        return [list(row) for row in rows]
    if not rows:
        raise LoadError(f"CSV file {path} has no header row")
    header = rows[0]
    records = []
    for row in rows[1:]:
        record = {}
        for index, key in enumerate(header):
            value = row[index] if index < len(row) else ""
            record[key] = value if value != "" else None
        records.append(record)
    return records


def _coerce(value: str | None) -> Any:
    """Best-effort typed view of a CSV cell: int, float, bool or string."""
    if value is None:
        return None
    text = value.strip()
    if text == "":
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("null", "nan"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return value


def read_driving_table(
    path: str | Path,
    *,
    delimiter: str = ",",
    coerce: bool = True,
) -> DrivingTable:
    """Load a CSV (with a header row) as a driving table.

    With ``coerce=True`` numeric-looking cells become numbers and empty
    cells become null, matching how the paper's example tables mix ids
    and null values.
    """
    records = read_csv_rows(path, with_headers=True, delimiter=delimiter)
    if coerce:
        records = [
            {key: _coerce(value) for key, value in record.items()}
            for record in records
        ]
    if not records:
        return DrivingTable()
    return DrivingTable(columns=tuple(records[0]), records=records)


def write_csv(
    path: str | Path,
    columns: Iterable[str],
    rows: Iterable[Iterable[Any]],
    *,
    delimiter: str = ",",
) -> None:
    """Write rows to a CSV file with a header (nulls as empty cells)."""
    columns = list(columns)
    try:
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            writer.writerow(columns)
            for row in rows:
                writer.writerow(
                    ["" if value is None else value for value in row]
                )
    except OSError as error:
        raise LoadError(f"cannot write CSV file {path}: {error}") from error
