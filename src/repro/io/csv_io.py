"""CSV import/export.

The paper's user survey singles out one dominant MERGE workload:
populating a graph from relational/CSV exports ("it is a common
practice to input nodes first and relationships later", Example 3).
This module supports that workflow twice over:

* :func:`read_csv_rows` backs the ``LOAD CSV`` clause (values stay
  strings, empty fields become null -- the nulls of Example 5 arise
  naturally this way);
* :func:`read_driving_table` loads a CSV directly as a
  :class:`~repro.runtime.table.DrivingTable` with optional numeric
  coercion, for feeding pre-populated tables into update clauses
  exactly like the paper's examples do.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable

from repro.errors import LoadError
from repro.runtime.table import DrivingTable


def read_csv_rows(
    path: str | Path,
    *,
    with_headers: bool = False,
    delimiter: str = ",",
) -> list:
    """Read a CSV file as LOAD CSV does.

    With headers each row becomes a map (missing/empty fields are
    null); without headers each row is a list of strings.
    """
    try:
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            rows = list(reader)
    except OSError as error:
        raise LoadError(f"cannot read CSV file {path}: {error}") from error
    if not with_headers:
        return [list(row) for row in rows]
    if not rows:
        raise LoadError(f"CSV file {path} has no header row")
    header = rows[0]
    records = []
    for row in rows[1:]:
        record = {}
        for index, key in enumerate(header):
            value = row[index] if index < len(row) else ""
            record[key] = value if value != "" else None
        records.append(record)
    return records


def _coerce(value: str | None) -> Any:
    """Best-effort typed view of a CSV cell: int, float, bool or string."""
    if value is None:
        return None
    text = value.strip()
    if text == "":
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("null", "nan"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return value


def read_driving_table(
    path: str | Path,
    *,
    delimiter: str = ",",
    coerce: bool = True,
) -> DrivingTable:
    """Load a CSV (with a header row) as a driving table.

    With ``coerce=True`` numeric-looking cells become numbers and empty
    cells become null, matching how the paper's example tables mix ids
    and null values.
    """
    records = read_csv_rows(path, with_headers=True, delimiter=delimiter)
    if coerce:
        records = [
            {key: _coerce(value) for key, value in record.items()}
            for record in records
        ]
    if not records:
        return DrivingTable()
    return DrivingTable(columns=tuple(records[0]), records=records)


def write_graph_csv(
    store,
    nodes_path: str | Path,
    rels_path: str | Path,
    *,
    delimiter: str = ",",
) -> None:
    """Export a whole graph as the nodes-file + relationships-file pair.

    This is the survey's relational interchange shape (Example 3:
    "input nodes first and relationships later").  Labels are
    ``;``-joined; property maps are JSON cells, so heterogeneous and
    non-string values survive the round-trip.  Entity ids are
    preserved, making the export replayable into an identical store via
    :func:`read_graph_csv`.
    """
    import json

    from repro.io.graph_json import graph_to_dict

    graph = graph_to_dict(store)
    write_csv(
        nodes_path,
        ("id", "labels", "properties"),
        (
            (
                node["id"],
                ";".join(node["labels"]),
                json.dumps(node["properties"], sort_keys=True),
            )
            for node in graph["nodes"]
        ),
        delimiter=delimiter,
    )
    write_csv(
        rels_path,
        ("id", "type", "start", "end", "properties"),
        (
            (
                rel["id"],
                rel["type"],
                rel["start"],
                rel["end"],
                json.dumps(rel["properties"], sort_keys=True),
            )
            for rel in graph["relationships"]
        ),
        delimiter=delimiter,
    )


def read_graph_csv(
    nodes_path: str | Path,
    rels_path: str | Path,
    *,
    delimiter: str = ",",
):
    """Import a nodes-file + relationships-file pair as a new store.

    The inverse of :func:`write_graph_csv`; raises :class:`LoadError`
    on malformed rows (missing columns, bad ids, invalid property
    JSON, relationships naming unknown nodes).
    """
    import json

    from repro.io.graph_json import dict_to_store

    def parse_row(record: dict, path, keys: tuple[str, ...]) -> dict:
        missing = [key for key in keys if record.get(key) is None]
        # properties may legitimately be empty ("{}" never is, but be
        # lenient: an empty cell means no properties)
        missing = [key for key in missing if key != "properties"]
        if missing:
            raise LoadError(
                f"{path}: row {record!r} is missing column(s) {missing}"
            )
        try:
            properties = json.loads(record["properties"] or "{}")
        except ValueError as error:
            raise LoadError(
                f"{path}: invalid properties JSON in row {record!r}"
            ) from error
        if not isinstance(properties, dict):
            raise LoadError(
                f"{path}: properties cell must be a JSON object, got "
                f"{type(properties).__name__}"
            )
        parsed = dict(record, properties=properties)
        for key in keys:
            if key in ("id", "start", "end"):
                try:
                    parsed[key] = int(record[key])
                except (TypeError, ValueError) as error:
                    raise LoadError(
                        f"{path}: non-integer {key} in row {record!r}"
                    ) from error
        return parsed

    node_rows = read_csv_rows(
        nodes_path, with_headers=True, delimiter=delimiter
    )
    rel_rows = read_csv_rows(
        rels_path, with_headers=True, delimiter=delimiter
    )
    nodes = []
    for record in node_rows:
        parsed = parse_row(record, nodes_path, ("id", "properties"))
        labels = [
            label
            for label in (record.get("labels") or "").split(";")
            if label
        ]
        nodes.append(
            {
                "id": parsed["id"],
                "labels": labels,
                "properties": parsed["properties"],
            }
        )
    relationships = []
    for record in rel_rows:
        parsed = parse_row(
            record, rels_path, ("id", "type", "start", "end", "properties")
        )
        relationships.append(
            {
                "id": parsed["id"],
                "type": parsed["type"],
                "start": parsed["start"],
                "end": parsed["end"],
                "properties": parsed["properties"],
            }
        )
    return dict_to_store({"nodes": nodes, "relationships": relationships})


def write_csv(
    path: str | Path,
    columns: Iterable[str],
    rows: Iterable[Iterable[Any]],
    *,
    delimiter: str = ",",
) -> None:
    """Write rows to a CSV file with a header (nulls as empty cells)."""
    columns = list(columns)
    try:
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            writer.writerow(columns)
            for row in rows:
                writer.writerow(
                    ["" if value is None else value for value in row]
                )
    except OSError as error:
        raise LoadError(f"cannot write CSV file {path}: {error}") from error
