"""JSON serialization of property graphs.

A small, stable on-disk format so examples and users can persist and
reload graphs::

    {"nodes": [{"id": 0, "labels": ["User"], "properties": {...}}, ...],
     "relationships": [{"id": 0, "type": "ORDERED", "start": 0,
                        "end": 1, "properties": {...}}, ...]}
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import LoadError
from repro.graph.model import GraphSnapshot
from repro.graph.store import GraphStore


def graph_to_dict(graph: GraphStore | GraphSnapshot) -> dict:
    """Plain-dict form of a graph (JSON-serializable)."""
    snapshot = graph.snapshot() if isinstance(graph, GraphStore) else graph
    return {
        "nodes": [
            {
                "id": node_id,
                "labels": sorted(snapshot.labels.get(node_id, frozenset())),
                "properties": dict(
                    snapshot.node_properties.get(node_id, {})
                ),
            }
            for node_id in sorted(snapshot.nodes)
        ],
        "relationships": [
            {
                "id": rel_id,
                "type": snapshot.types[rel_id],
                "start": snapshot.source[rel_id],
                "end": snapshot.target[rel_id],
                "properties": dict(snapshot.rel_properties.get(rel_id, {})),
            }
            for rel_id in sorted(snapshot.relationships)
        ],
    }


def dict_to_store(data: dict) -> GraphStore:
    """Rebuild a store from :func:`graph_to_dict` output."""
    store = GraphStore()
    id_map: dict[int, int] = {}
    try:
        for node in data["nodes"]:
            id_map[node["id"]] = store.create_node(
                node.get("labels", ()), dict(node.get("properties", {}))
            )
        for rel in data["relationships"]:
            store.create_relationship(
                rel["type"],
                id_map[rel["start"]],
                id_map[rel["end"]],
                dict(rel.get("properties", {})),
            )
    except (KeyError, TypeError) as error:
        raise LoadError(f"malformed graph JSON: {error}") from error
    store.commit_to(0)
    return store


def save_graph(graph: GraphStore | GraphSnapshot, path: str | Path) -> None:
    """Write the graph to *path* as JSON."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(graph_to_dict(graph), handle, indent=2, sort_keys=True)
    except OSError as error:
        raise LoadError(f"cannot write graph JSON {path}: {error}") from error


def load_graph(path: str | Path) -> GraphStore:
    """Read a graph previously written by :func:`save_graph`."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise LoadError(f"cannot read graph JSON {path}: {error}") from error
    return dict_to_store(data)
