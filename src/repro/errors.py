"""Exception hierarchy for the Cypher reproduction engine.

Every error raised by the library derives from :class:`CypherError`, so
callers can catch a single type at a statement boundary.  The hierarchy
mirrors the phases of query processing (lexing, parsing, semantic
checking, evaluation, updating) plus the new error conditions introduced
by the paper's revised update semantics:

* :class:`PropertyConflictError` -- an atomic ``SET`` collected two
  different values for the same (entity, key) pair (paper, Example 2);
* :class:`DanglingRelationshipError` -- a strict ``DELETE`` would leave a
  relationship without a source or target (paper, Section 4.2 / 7);
* :class:`MergeSyntaxError` -- a bare ``MERGE`` without ``ALL``/``SAME``
  in the revised dialect (paper, Section 7).
"""

from __future__ import annotations


class CypherError(Exception):
    """Base class for all errors raised by the engine."""


class CypherSyntaxError(CypherError):
    """A statement could not be tokenized or parsed.

    Carries the source position so callers can point at the offending
    token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class MergeSyntaxError(CypherSyntaxError):
    """A MERGE form is not allowed in the active dialect.

    In the revised dialect a bare ``MERGE`` (without ``ALL`` or ``SAME``)
    is rejected, per Section 7 of the paper; conversely ``MERGE ALL`` and
    ``MERGE SAME`` are not Cypher 9 syntax.
    """


class CypherSemanticError(CypherError):
    """A statement parsed but is ill-formed (unknown variable, etc.)."""


class UnknownVariableError(CypherSemanticError):
    """An expression referenced a variable that is not in scope."""


class VariableAlreadyBoundError(CypherSemanticError):
    """A pattern tried to re-declare an already bound entity variable."""


class CypherTypeError(CypherError):
    """An expression was applied to values of an inappropriate type."""


class CypherEvaluationError(CypherError):
    """A runtime evaluation failure (division by zero, bad index...)."""


class ParameterMissingError(CypherEvaluationError):
    """A statement referenced a parameter that was not supplied."""


class ResourceLimitError(CypherEvaluationError):
    """An evaluation would exceed a configured resource limit.

    Raised instead of materialising unbounded intermediate values
    (e.g. ``range(0, 2^62)``), which would otherwise exhaust process
    memory -- a remote denial of service once statements arrive over
    the network.  The limit is configurable per scope via
    :func:`repro.runtime.limits.list_length_limit`; the server wires
    its per-request cap through the same mechanism.
    """


class UpdateError(CypherError):
    """Base class for errors raised while applying update clauses."""


class PropertyConflictError(UpdateError):
    """An atomic SET collected conflicting values for one property.

    Raised by the revised dialect when, across the driving table, the
    same (entity, key) pair is assigned two values that are not the same
    (paper, Example 2 and Section 7: "any ambiguous SET clause ...
    should abort with an error").
    """

    def __init__(self, entity: object, key: str, first: object, second: object):
        self.entity = entity
        self.key = key
        self.first = first
        self.second = second
        super().__init__(
            f"conflicting values for property '{key}' of {entity}: "
            f"{first!r} vs {second!r}"
        )


class DanglingRelationshipError(UpdateError):
    """A DELETE would leave relationships without an endpoint.

    Raised by the revised dialect when a node is deleted while some of
    its relationships are not deleted in the same clause (paper,
    Section 7: strict semantics).
    """

    def __init__(self, node: object, relationships: tuple = ()):
        self.node = node
        self.relationships = tuple(relationships)
        rels = ", ".join(str(r) for r in self.relationships) or "?"
        super().__init__(
            f"cannot delete node {node}: relationships [{rels}] are still "
            f"attached (use DETACH DELETE or delete them in the same clause)"
        )


class EntityNotFoundError(CypherError):
    """An operation referenced a node or relationship id not in the graph."""


class DeletedEntityError(UpdateError):
    """The revised dialect refused an operation on a deleted entity."""


class TransactionError(CypherError):
    """Invalid use of the transaction API (commit after rollback, ...)."""


class ConstraintViolationError(UpdateError):
    """A graph invariant would be violated (e.g. relationship w/o type)."""


class LoadError(CypherError):
    """Failure while importing external data (CSV, JSON)."""


class PersistenceError(CypherError):
    """Invalid use of the durability layer (no WAL attached, bad
    checkpoint, checkpoint inside an open transaction, ...)."""
