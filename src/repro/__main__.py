"""``python -m repro`` starts the interactive Cypher shell."""

from repro.tools.shell import main

raise SystemExit(main())
