"""A networked graph service over the embedded engine.

``python -m repro.server`` serves one :class:`~repro.session.Graph`
over HTTP with per-client sessions, explicit transactions,
statement-level snapshot-consistent reads, per-request resource
limits, and group-committed durability.  See ``docs/server.md``.
"""

from repro.server.http import HttpServer
from repro.server.limits import RequestLimits
from repro.server.routers import ROUTES, match_route
from repro.server.service import GraphService, ServerConfig
from repro.server.sessions import (
    Session,
    SessionManager,
    UnknownSessionError,
    WriteBusyError,
)
from repro.server.wire import (
    WireNode,
    WirePath,
    WireRelationship,
    from_wire,
    result_to_wire,
    to_wire,
)

__all__ = [
    "ROUTES",
    "GraphService",
    "HttpServer",
    "RequestLimits",
    "ServerConfig",
    "Session",
    "SessionManager",
    "UnknownSessionError",
    "WireNode",
    "WirePath",
    "WireRelationship",
    "WriteBusyError",
    "from_wire",
    "match_route",
    "result_to_wire",
    "to_wire",
]
