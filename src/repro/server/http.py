"""A minimal HTTP/1.1 front end over :class:`GraphService`.

Standard-library only (asyncio streams): the container image bakes in
no HTTP framework, and the service needs very little -- JSON bodies
with ``Content-Length`` framing, keep-alive connections, and the
request-body cap enforced *before* the body is read so an oversized
upload is rejected without buffering it.

Each connection is one asyncio task; each request awaits
:meth:`GraphService.handle`.  All concurrency therefore lives on one
event loop, which is exactly the execution model the session layer's
isolation guarantees assume.
"""

from __future__ import annotations

import asyncio
import json

from repro.server.service import GraphService

_MAX_HEADER_BYTES = 32 * 1024
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpServer:
    """Serve a :class:`GraphService` on a TCP port."""

    def __init__(
        self, service: GraphService, host: str = "127.0.0.1", port: int = 0
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        """Bind and start accepting (port 0 picks an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await _read_request(
                    reader, self.service.config.limits.max_body_bytes
                )
                if request is None:
                    break
                method, path, body, keep_alive, error = request
                if error is not None:
                    status, payload = error
                    await _write_response(
                        writer, status, payload, keep_alive=False
                    )
                    break
                status, payload = await self.service.handle(
                    method, path, body
                )
                await _write_response(
                    writer, status, payload, keep_alive=keep_alive
                )
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection mid-read;
            # fall through to close the socket without propagating
            # (propagating out of the connection task makes the
            # streams machinery log a spurious traceback).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass


async def _read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> tuple[str, str, bytes, bool, tuple[int, dict] | None] | None:
    """Read one request; ``None`` on clean EOF before a request line."""
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as eof:
        if not eof.partial:
            return None
        raise
    except asyncio.LimitOverrunError:
        return "GET", "/", b"", False, (
            400,
            {"error": {"type": "BadRequest", "message": "headers too large"}},
        )
    if len(header_blob) > _MAX_HEADER_BYTES:
        return "GET", "/", b"", False, (
            400,
            {"error": {"type": "BadRequest", "message": "headers too large"}},
        )
    try:
        head, *header_lines = header_blob.decode("latin-1").split("\r\n")
        method, path, _version = head.split(" ", 2)
    except ValueError:
        return "GET", "/", b"", False, (
            400,
            {
                "error": {
                    "type": "BadRequest",
                    "message": "malformed request line",
                }
            },
        )
    headers: dict[str, str] = {}
    for line in header_lines:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    keep_alive = headers.get("connection", "keep-alive") != "close"
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        length = -1
    if length < 0:
        return method, path, b"", False, (
            400,
            {
                "error": {
                    "type": "BadRequest",
                    "message": f"bad Content-Length {length_text!r}",
                }
            },
        )
    if length > max_body_bytes:
        # Reject before buffering; the connection closes because the
        # unread body would otherwise desynchronise the stream.
        return method, path, b"", False, (
            413,
            {
                "error": {
                    "type": "ResourceLimitError",
                    "message": (
                        f"request body of {length} bytes exceeds the "
                        f"limit of {max_body_bytes}"
                    ),
                }
            },
        )
    body = await reader.readexactly(length) if length else b""
    return method, path, body, keep_alive, None


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    *,
    keep_alive: bool,
) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()
