"""The JSON wire format shared by the server and the client.

Result values cross the transport as plain JSON.  Scalars pass
through; graph entities become tagged objects so the client can
reconstruct typed handles instead of bare property maps::

    {"~kind": "node", "id": 3, "labels": ["User"], "properties": {...}}
    {"~kind": "relationship", "id": 1, "type": "KNOWS",
     "start": 3, "end": 4, "properties": {...}}
    {"~kind": "path", "nodes": [...], "relationships": [...]}

A user map that happens to contain a ``~kind`` key is escaped as
``{"~kind": "map", "value": {...}}`` so the tagging is unambiguous.
Both directions live here -- the server serialises with
:func:`to_wire`, the client revives with :func:`from_wire` -- so the
format cannot drift between the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine import QueryResult, UpdateCounters
from repro.graph.model import Node, Path, Relationship

KIND_KEY = "~kind"


@dataclass(frozen=True)
class WireNode:
    """Client-side handle of a node that lives on the server."""

    id: int
    labels: tuple[str, ...] = ()
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.properties.get(key, default)

    def __repr__(self) -> str:
        labels = "".join(f":{label}" for label in self.labels)
        props = (
            " " + repr(self.properties) if self.properties else ""
        )
        return f"({labels or ''}{props})" if (labels or props) else "()"


@dataclass(frozen=True)
class WireRelationship:
    """Client-side handle of a relationship on the server."""

    id: int
    type: str
    start: int
    end: int
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.properties.get(key, default)

    def __repr__(self) -> str:
        props = " " + repr(self.properties) if self.properties else ""
        return f"-[:{self.type}{props}]-"


@dataclass(frozen=True)
class WirePath:
    """Client-side view of a path."""

    nodes: tuple[WireNode, ...]
    relationships: tuple[WireRelationship, ...]

    def __len__(self) -> int:
        return len(self.relationships)


def to_wire(value: Any) -> Any:
    """JSON-encodable form of one result value."""
    if isinstance(value, Node):
        return {
            KIND_KEY: "node",
            "id": value.id,
            "labels": sorted(value.labels),
            "properties": {
                key: to_wire(item)
                for key, item in value.properties.items()
            },
        }
    if isinstance(value, Relationship):
        return {
            KIND_KEY: "relationship",
            "id": value.id,
            "type": value.type,
            "start": value.start.id,
            "end": value.end.id,
            "properties": {
                key: to_wire(item)
                for key, item in value.properties.items()
            },
        }
    if isinstance(value, Path):
        return {
            KIND_KEY: "path",
            "nodes": [to_wire(node) for node in value.nodes],
            "relationships": [
                to_wire(rel) for rel in value.relationships
            ],
        }
    if isinstance(value, list):
        return [to_wire(item) for item in value]
    if isinstance(value, dict):
        encoded = {key: to_wire(item) for key, item in value.items()}
        if KIND_KEY in encoded:
            return {KIND_KEY: "map", "value": encoded}
        return encoded
    return value


def from_wire(value: Any) -> Any:
    """Revive one wire value into client-side handles."""
    if isinstance(value, list):
        return [from_wire(item) for item in value]
    if isinstance(value, dict):
        kind = value.get(KIND_KEY)
        if kind == "node":
            return WireNode(
                id=value["id"],
                labels=tuple(value["labels"]),
                properties={
                    key: from_wire(item)
                    for key, item in value["properties"].items()
                },
            )
        if kind == "relationship":
            return WireRelationship(
                id=value["id"],
                type=value["type"],
                start=value["start"],
                end=value["end"],
                properties={
                    key: from_wire(item)
                    for key, item in value["properties"].items()
                },
            )
        if kind == "path":
            return WirePath(
                nodes=tuple(from_wire(n) for n in value["nodes"]),
                relationships=tuple(
                    from_wire(r) for r in value["relationships"]
                ),
            )
        if kind == "map":
            return {
                key: from_wire(item)
                for key, item in value["value"].items()
            }
        return {key: from_wire(item) for key, item in value.items()}
    return value


def result_to_wire(result: QueryResult) -> dict:
    """Wire form of a whole :class:`~repro.engine.QueryResult`."""
    columns = list(result.columns)
    return {
        "columns": columns,
        "records": [
            [to_wire(record[column]) for column in columns]
            for record in result.table.to_dicts()
        ],
        "counters": counters_to_wire(result.counters),
    }


def counters_to_wire(counters: UpdateCounters) -> dict:
    return {
        "nodes_created": counters.nodes_created,
        "nodes_deleted": counters.nodes_deleted,
        "relationships_created": counters.relationships_created,
        "relationships_deleted": counters.relationships_deleted,
        "properties_set": counters.properties_set,
        "labels_added": counters.labels_added,
        "labels_removed": counters.labels_removed,
    }


def counters_from_wire(data: dict | None) -> UpdateCounters:
    return UpdateCounters(**(data or {}))
