"""Route table for the graph service.

A deliberately tiny router: an ordered list of
``(method, pattern, handler_name)`` where ``{name}`` segments capture
path parameters.  :func:`match_route` returns the handler attribute
name on :class:`~repro.server.service.GraphService` plus the captured
parameters, or raises :class:`LookupError`.

==========  =============================  ==========================
method      path                           purpose
==========  =============================  ==========================
GET         /health                        liveness probe
GET         /stats                         server / group-commit stats
GET         /schema                        indexes and constraints
POST        /query                         sessionless autocommit
POST        /sessions                      open a session
DELETE      /sessions/{id}                 close (rolls back open tx)
POST        /sessions/{id}/query           statement in the session
POST        /sessions/{id}/begin           declare a transaction
POST        /sessions/{id}/commit          commit (durable on return)
POST        /sessions/{id}/rollback        roll back
GET         /views                         per-view maintenance stats
POST        /views                         register a maintained view
GET         /views/{id}                    current view result + LSN
DELETE      /views/{id}                    drop a view
POST        /views/{id}/subscribe          open a change subscription
POST        /views/{id}/changes            long-poll for result diffs
DELETE      /views/{id}/subscriptions/{sid}  close a subscription
POST        /admin/checkpoint              snapshot + truncate WAL
==========  =============================  ==========================
"""

from __future__ import annotations

ROUTES: tuple[tuple[str, str, str], ...] = (
    ("GET", "/health", "handle_health"),
    ("GET", "/stats", "handle_stats"),
    ("GET", "/schema", "handle_schema"),
    ("POST", "/query", "handle_query"),
    ("POST", "/sessions", "handle_session_create"),
    ("DELETE", "/sessions/{id}", "handle_session_close"),
    ("POST", "/sessions/{id}/query", "handle_session_query"),
    ("POST", "/sessions/{id}/begin", "handle_begin"),
    ("POST", "/sessions/{id}/commit", "handle_commit"),
    ("POST", "/sessions/{id}/rollback", "handle_rollback"),
    ("GET", "/views", "handle_views_list"),
    ("POST", "/views", "handle_view_register"),
    ("GET", "/views/{id}", "handle_view_result"),
    ("DELETE", "/views/{id}", "handle_view_drop"),
    ("POST", "/views/{id}/subscribe", "handle_view_subscribe"),
    ("POST", "/views/{id}/changes", "handle_view_changes"),
    (
        "DELETE",
        "/views/{id}/subscriptions/{sid}",
        "handle_view_unsubscribe",
    ),
    ("POST", "/admin/checkpoint", "handle_checkpoint"),
)


def match_route(method: str, path: str) -> tuple[str, dict[str, str]]:
    """Resolve ``(handler_name, path_params)`` or raise LookupError."""
    # ignore any query string; the API carries arguments in bodies
    path = path.split("?", 1)[0]
    segments = [s for s in path.split("/") if s]
    for route_method, pattern, handler in ROUTES:
        if route_method != method.upper():
            continue
        expected = [s for s in pattern.split("/") if s]
        if len(expected) != len(segments):
            continue
        params: dict[str, str] = {}
        for want, got in zip(expected, segments):
            if want.startswith("{") and want.endswith("}"):
                params[want[1:-1]] = got
            elif want != got:
                break
        else:
            return handler, params
    raise LookupError(f"{method} {path}")
