"""Per-request resource limits for the graph service.

Every request handler enforces these caps *before* committing
resources: body size during transport framing, statement length
before parsing, the evaluator's list-length cap (wired into
:mod:`repro.runtime.limits` for the duration of the statement -- the
same guard that stops ``range(0, 2^62)`` in-process stops it
remotely), result-row counts after execution, and session-table
growth on session creation.  Violations surface as
:class:`~repro.errors.ResourceLimitError`, which the HTTP layer maps
to ``413 Payload Too Large``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceLimitError


@dataclass(frozen=True)
class RequestLimits:
    """Caps applied to every request (a frozen config object)."""

    #: largest accepted HTTP request body
    max_body_bytes: int = 1 << 20
    #: longest accepted statement text
    max_statement_chars: int = 100_000
    #: evaluator list-materialisation cap (range() and friends)
    max_list_length: int = 250_000
    #: most rows a single statement may return
    max_result_rows: int = 100_000
    #: most concurrently open sessions
    max_sessions: int = 1024
    #: seconds of inactivity before a session may be reaped
    session_idle_timeout_s: float = 3600.0
    #: seconds a writer waits for the write lock before giving up
    write_lock_timeout_s: float = 30.0
    #: whether LOAD CSV (server-side file reads!) is allowed
    allow_load_csv: bool = False
    #: per-request cap on morsel workers (parallel read execution); the
    #: default of 1 keeps server statements serial so one client cannot
    #: monopolise the host's cores -- operators raise it deliberately
    max_workers: int = 1
    #: most concurrently registered materialized views
    max_views: int = 64
    #: most concurrent view subscriptions (across all views)
    max_view_subscriptions: int = 256
    #: longest honoured ``/views/{id}/changes`` long-poll timeout
    max_poll_timeout_s: float = 30.0

    def clamp_poll_timeout(self, requested: float | None) -> float:
        """The effective long-poll wait for a requested timeout."""
        if requested is None:
            return self.max_poll_timeout_s
        return max(0.0, min(float(requested), self.max_poll_timeout_s))

    def check_statement_length(self, source: str) -> None:
        if len(source) > self.max_statement_chars:
            raise ResourceLimitError(
                f"statement of {len(source)} characters exceeds the "
                f"limit of {self.max_statement_chars}"
            )

    def check_result_rows(self, rows: int) -> None:
        if rows > self.max_result_rows:
            raise ResourceLimitError(
                f"result of {rows} rows exceeds the limit of "
                f"{self.max_result_rows} rows per statement"
            )
