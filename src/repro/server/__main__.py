"""CLI entry point: ``python -m repro.server``.

Examples::

    python -m repro.server --port 7688                 # in-memory
    python -m repro.server --path data/ --fsync always # durable
    python -m repro.server --self-test                 # CI smoke

``--self-test`` boots the server on an ephemeral port, drives a burst
of concurrent clients through sessions, transactions, snapshot reads
and scalar-function edge cases over real sockets, asserts every
response, and shuts the server down cleanly.  Exit code 0 means the
whole networked stack works; CI's ``server-smoke`` job runs exactly
this.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.persistence import FSYNC_POLICIES
from repro.server.http import HttpServer
from repro.server.service import GraphService, ServerConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a Cypher graph over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7688)
    parser.add_argument(
        "--path",
        default=None,
        help="durability directory (omit for an in-memory graph)",
    )
    parser.add_argument(
        "--fsync",
        default="always",
        choices=FSYNC_POLICIES,
        help="durability guarantee for acknowledged writes",
    )
    parser.add_argument(
        "--no-group-commit",
        action="store_true",
        help="fsync per statement instead of batching writers",
    )
    parser.add_argument(
        "--dialect",
        default="revised",
        choices=("cypher9", "revised"),
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="boot on an ephemeral port, run a concurrent-client "
        "smoke test, and exit",
    )
    return parser


def _config_from(args: argparse.Namespace) -> ServerConfig:
    return ServerConfig(
        host=args.host,
        port=args.port,
        path=args.path,
        fsync=args.fsync,
        group_commit=not args.no_group_commit,
        dialect=args.dialect,
    )


async def _serve(config: ServerConfig) -> None:
    server = HttpServer(
        GraphService(config), host=config.host, port=config.port
    )
    await server.start()
    durable = "durable" if config.path else "in-memory"
    print(f"repro graph server listening on {server.url} ({durable})")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()


async def _self_test(config: ServerConfig) -> None:
    from repro.client import Client

    config.port = 0  # ephemeral
    server = HttpServer(
        GraphService(config), host=config.host, port=config.port
    )
    await server.start()
    url = server.url
    print(f"[self-test] server on {url}")
    loop = asyncio.get_running_loop()

    def drive() -> None:
        client = Client.connect(url)
        try:
            assert client.health()["status"] == "ok"
            # scalar-function regressions over the wire
            row = client.run(
                "RETURN split('abc', '') AS s, round(0.5) AS r"
            ).single()
            assert row["s"] == ["a", "b", "c"], row
            assert row["r"] == 1.0, row
            # concurrent sessions: writer tx invisible until commit
            writer = client.session()
            reader = client.session()
            writer.begin()
            writer.run("CREATE (:SelfTest {seq: 1})")
            visible = reader.run(
                "MATCH (n:SelfTest) RETURN count(n) AS c"
            ).single()["c"]
            assert visible == 0, f"dirty read: {visible}"
            writer.commit()
            visible = reader.run(
                "MATCH (n:SelfTest) RETURN count(n) AS c"
            ).single()["c"]
            assert visible == 1, f"lost commit: {visible}"
            writer.close()
            reader.close()
            # concurrent autocommit writers from threads
            import concurrent.futures

            def write(i: int) -> int:
                c = Client.connect(url)
                try:
                    c.run(
                        "CREATE (:SelfTest {seq: $i})", {"i": i}
                    )
                    return 1
                finally:
                    c.close()

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                done = sum(pool.map(write, range(2, 34)))
            assert done == 32
            total = client.run(
                "MATCH (n:SelfTest) RETURN count(n) AS c"
            ).single()["c"]
            assert total == 33, f"expected 33 nodes, saw {total}"
            # resource limits enforced remotely
            try:
                client.run("RETURN range(0, 2000000000000) AS xs")
            except Exception as error:
                assert "ResourceLimitError" in type(error).__name__, error
            else:
                raise AssertionError("range() cap not enforced")
        finally:
            client.close()

    try:
        await loop.run_in_executor(None, drive)
    finally:
        await server.close()
    print("[self-test] ok: sessions, isolation, limits, shutdown")


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    config = _config_from(args)
    try:
        if args.self_test:
            asyncio.run(_self_test(config))
        else:
            asyncio.run(_serve(config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
