"""The graph service: one shared :class:`Graph` behind request handlers.

:class:`GraphService` is transport-agnostic -- it maps
``(method, path, JSON body)`` to ``(status, JSON body)``.  The real
HTTP listener (:mod:`repro.server.http`) and the in-process mock
transport used by the test suite both call :meth:`GraphService.handle`,
so everything above the socket -- routing, sessions, isolation, limits,
durability -- is exercised identically in both.

Durability wiring: when the graph is durable and group commit is
enabled (the default), the persistence manager is opened with the
``off`` fsync policy and a :class:`~repro.persistence.GroupCommitter`
supplies the ``fsync=always`` guarantee -- each write statement (or
COMMIT) is acknowledged only after its WAL LSN is on disk, but
concurrent writers share one fsync per batch instead of paying one
each.  With group commit disabled the manager's own policy applies
per statement, exactly as the embedded API behaves.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    CypherError,
    PersistenceError,
    ResourceLimitError,
    TransactionError,
)
from repro.persistence import GroupCommitter
from repro.server.limits import RequestLimits
from repro.server.routers import match_route
from repro.server.sessions import (
    SessionManager,
    UnknownSessionError,
    WriteBusyError,
)
from repro.server.wire import result_to_wire
from repro.session import Graph

#: wire name -> HTTP status for error responses
_STATUS_FOR = (
    (ResourceLimitError, 413),
    (UnknownSessionError, 404),
    (WriteBusyError, 409),
    (TransactionError, 409),
    (PersistenceError, 409),
    (CypherError, 400),
)


def error_status(error: Exception) -> int:
    for cls, status in _STATUS_FOR:
        if isinstance(error, cls):
            return status
    return 500


@dataclass
class ServerConfig:
    """Everything ``python -m repro.server`` accepts."""

    host: str = "127.0.0.1"
    port: int = 7688
    #: durability directory; ``None`` serves an in-memory graph
    path: str | None = None
    #: fsync policy the *service* guarantees ("always"/"batch"/"off")
    fsync: str = "always"
    #: batch concurrent writers' fsyncs (only matters for "always")
    group_commit: bool = True
    dialect: str = "revised"
    limits: RequestLimits = field(default_factory=RequestLimits)


class GraphService:
    """Request handlers over one :class:`Graph` and its sessions."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig()
        self.committer: GroupCommitter | None = None
        if self.config.path is None:
            self.graph = Graph(dialect=self.config.dialect)
            # In-memory graphs have no commit hook, so the store would
            # defer journal truncation forever; a no-op hook keeps the
            # journal bounded to the open statement/transaction.
            self.graph.store.set_commit_hook(lambda ops: None)
        elif self.config.group_commit and self.config.fsync == "always":
            self.graph = Graph(
                path=self.config.path,
                fsync="off",
                dialect=self.config.dialect,
            )
            self.committer = GroupCommitter(self.graph.persistence)
        else:
            self.graph = Graph(
                path=self.config.path,
                fsync=self.config.fsync,
                dialect=self.config.dialect,
            )
        self.sessions = SessionManager(self.graph, self.config.limits)
        self.started = time.monotonic()
        self.requests = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def handle(
        self, method: str, path: str, body: bytes = b""
    ) -> tuple[int, dict]:
        """Serve one request; always returns ``(status, json_body)``."""
        self.requests += 1
        try:
            handler, params = match_route(method, path)
        except LookupError:
            self.errors += 1
            return 404, _error_body(
                "NotFound", f"no route for {method} {path}"
            )
        try:
            payload = _decode_body(body)
            result = await getattr(self, handler)(params, payload)
            return 200, result
        except Exception as error:  # noqa: BLE001 - boundary
            self.errors += 1
            status = error_status(error)
            if status == 500:
                message = f"internal error: {type(error).__name__}: {error}"
                return 500, _error_body("InternalError", message)
            return status, _error_body(type(error).__name__, str(error))

    async def close(self) -> None:
        """Roll back open transactions and release the graph."""
        for session_id in list(self.sessions._sessions):
            self.sessions.close(session_id)
        if self.committer is not None:
            await self.committer.close()
            if self.graph.persistence is not None:
                self.graph.persistence.sync()
        self.graph.close()

    async def _wait_durable(self, lsn: int | None) -> None:
        if lsn is None:
            return
        if self.committer is not None:
            await self.committer.wait_durable(lsn)
        # Without a committer the manager's own fsync policy already
        # ran inside log_commit; nothing further to await.

    # ------------------------------------------------------------------
    # Handlers (named by routers.ROUTES)
    # ------------------------------------------------------------------

    async def handle_health(self, params: dict, body: dict) -> dict:
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started, 3),
            "durable": self.graph.persistence is not None,
        }

    async def handle_stats(self, params: dict, body: dict) -> dict:
        store = self.graph.store
        stats: dict[str, Any] = {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "requests": self.requests,
            "errors": self.errors,
            "sessions": self.sessions.session_count(),
            "statements": self.sessions.statements_executed,
            "snapshot_reads": self.sessions.snapshot_reads,
            "write_waits": self.sessions.write_waits,
            "nodes": store.node_count(),
            "relationships": store.relationship_count(),
            "dialect": self.graph.dialect.value,
        }
        if self.graph.persistence is not None:
            stats["wal_lsn"] = self.graph.persistence.lsn
        if self.committer is not None:
            stats["group_commit"] = self.committer.stats()
        return stats

    async def handle_query(self, params: dict, body: dict) -> dict:
        source, parameters = _statement_from(body)
        result, lsn = await self.sessions.execute(
            None, source, parameters
        )
        await self._wait_durable(lsn)
        return result_to_wire(result)

    async def handle_session_create(
        self, params: dict, body: dict
    ) -> dict:
        session = self.sessions.create()
        return {"session": session.id}

    async def handle_session_close(
        self, params: dict, body: dict
    ) -> dict:
        self.sessions.close(params["id"])
        return {"closed": params["id"]}

    async def handle_session_query(
        self, params: dict, body: dict
    ) -> dict:
        session = self.sessions.get(params["id"])
        source, parameters = _statement_from(body)
        result, lsn = await self.sessions.execute(
            session, source, parameters
        )
        await self._wait_durable(lsn)
        payload = result_to_wire(result)
        payload["in_transaction"] = session.in_transaction
        return payload

    async def handle_begin(self, params: dict, body: dict) -> dict:
        session = self.sessions.get(params["id"])
        self.sessions.begin(session)
        return {"session": session.id, "in_transaction": True}

    async def handle_commit(self, params: dict, body: dict) -> dict:
        session = self.sessions.get(params["id"])
        lsn = self.sessions.commit(session)
        await self._wait_durable(lsn)
        return {"session": session.id, "in_transaction": False}

    async def handle_rollback(self, params: dict, body: dict) -> dict:
        session = self.sessions.get(params["id"])
        self.sessions.rollback(session)
        return {"session": session.id, "in_transaction": False}

    async def handle_schema(self, params: dict, body: dict) -> dict:
        store = self.graph.store
        return {
            "indexes": [
                {"label": label, "key": key}
                for label, key in sorted(store._property_indexes)
            ],
            "constraints": [
                {"label": label, "key": key, "type": "unique"}
                for label, key in sorted(store.unique_constraints())
            ],
        }

    async def handle_checkpoint(self, params: dict, body: dict) -> dict:
        if self.graph.persistence is None:
            raise PersistenceError(
                "graph has no persistence directory; nothing to checkpoint"
            )
        if self.committer is not None:
            await self.committer.wait_durable(self.graph.persistence.lsn)
        self.graph.checkpoint()
        return {
            "checkpointed": True,
            "lsn": self.graph.persistence.lsn,
        }


def _error_body(error_type: str, message: str) -> dict:
    return {"error": {"type": error_type, "message": message}}


def _decode_body(body: bytes) -> dict:
    if not body:
        return {}
    try:
        payload = json.loads(body)
    except (ValueError, UnicodeDecodeError):
        raise CypherError("request body is not valid JSON") from None
    if not isinstance(payload, dict):
        raise CypherError("request body must be a JSON object")
    return payload


def _statement_from(body: dict) -> tuple[str, dict]:
    source = body.get("statement")
    if not isinstance(source, str):
        raise CypherError(
            'request body must carry a string "statement" field'
        )
    parameters = body.get("parameters") or {}
    if not isinstance(parameters, dict):
        raise CypherError('"parameters" must be a JSON object')
    return source, parameters
