"""The graph service: one shared :class:`Graph` behind request handlers.

:class:`GraphService` is transport-agnostic -- it maps
``(method, path, JSON body)`` to ``(status, JSON body)``.  The real
HTTP listener (:mod:`repro.server.http`) and the in-process mock
transport used by the test suite both call :meth:`GraphService.handle`,
so everything above the socket -- routing, sessions, isolation, limits,
durability -- is exercised identically in both.

Durability wiring: when the graph is durable and group commit is
enabled (the default), the persistence manager is opened with the
``off`` fsync policy and a :class:`~repro.persistence.GroupCommitter`
supplies the ``fsync=always`` guarantee -- each write statement (or
COMMIT) is acknowledged only after its WAL LSN is on disk, but
concurrent writers share one fsync per batch instead of paying one
each.  With group commit disabled the manager's own policy applies
per statement, exactly as the embedded API behaves.
"""

from __future__ import annotations

import asyncio
import json
import secrets
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    CypherError,
    PersistenceError,
    ResourceLimitError,
    TransactionError,
)
from repro.persistence import GroupCommitter
from repro.server.limits import RequestLimits
from repro.server.routers import match_route
from repro.server.sessions import (
    SessionManager,
    UnknownSessionError,
    WriteBusyError,
)
from repro.server.wire import result_to_wire, to_wire
from repro.session import Graph

#: wire name -> HTTP status for error responses
_STATUS_FOR = (
    (ResourceLimitError, 413),
    (UnknownSessionError, 404),
    (WriteBusyError, 409),
    (TransactionError, 409),
    (PersistenceError, 409),
    (CypherError, 400),
)


def error_status(error: Exception) -> int:
    for cls, status in _STATUS_FOR:
        if isinstance(error, cls):
            return status
    return 500


@dataclass
class ServerConfig:
    """Everything ``python -m repro.server`` accepts."""

    host: str = "127.0.0.1"
    port: int = 7688
    #: durability directory; ``None`` serves an in-memory graph
    path: str | None = None
    #: fsync policy the *service* guarantees ("always"/"batch"/"off")
    fsync: str = "always"
    #: batch concurrent writers' fsyncs (only matters for "always")
    group_commit: bool = True
    dialect: str = "revised"
    limits: RequestLimits = field(default_factory=RequestLimits)


class GraphService:
    """Request handlers over one :class:`Graph` and its sessions."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig()
        self.committer: GroupCommitter | None = None
        if self.config.path is None:
            self.graph = Graph(dialect=self.config.dialect)
            # In-memory graphs have no commit hook, so the store would
            # defer journal truncation forever; a no-op hook keeps the
            # journal bounded to the open statement/transaction.
            self.graph.store.set_commit_hook(lambda ops: None)
        elif self.config.group_commit and self.config.fsync == "always":
            self.graph = Graph(
                path=self.config.path,
                fsync="off",
                dialect=self.config.dialect,
            )
            self.committer = GroupCommitter(self.graph.persistence)
        else:
            self.graph = Graph(
                path=self.config.path,
                fsync=self.config.fsync,
                dialect=self.config.dialect,
            )
        self.sessions = SessionManager(self.graph, self.config.limits)
        self.started = time.monotonic()
        self.requests = 0
        self.errors = 0
        #: open view subscriptions by subscription id
        self._subscriptions: dict[str, _Subscription] = {}
        self._views_wired = False

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def handle(
        self, method: str, path: str, body: bytes = b""
    ) -> tuple[int, dict]:
        """Serve one request; always returns ``(status, json_body)``."""
        self.requests += 1
        try:
            handler, params = match_route(method, path)
        except LookupError:
            self.errors += 1
            return 404, _error_body(
                "NotFound", f"no route for {method} {path}"
            )
        try:
            payload = _decode_body(body)
            result = await getattr(self, handler)(params, payload)
            return 200, result
        except Exception as error:  # noqa: BLE001 - boundary
            self.errors += 1
            status = error_status(error)
            if status == 500:
                message = f"internal error: {type(error).__name__}: {error}"
                return 500, _error_body("InternalError", message)
            return status, _error_body(type(error).__name__, str(error))

    async def close(self) -> None:
        """Roll back open transactions and release the graph."""
        for subscription in self._subscriptions.values():
            subscription.event.set()
        self._subscriptions.clear()
        for session_id in list(self.sessions._sessions):
            self.sessions.close(session_id)
        if self.committer is not None:
            await self.committer.close()
            if self.graph.persistence is not None:
                self.graph.persistence.sync()
        self.graph.close()

    async def _wait_durable(self, lsn: int | None) -> None:
        if lsn is None:
            return
        if self.committer is not None:
            await self.committer.wait_durable(lsn)
        # Without a committer the manager's own fsync policy already
        # ran inside log_commit; nothing further to await.

    # ------------------------------------------------------------------
    # Handlers (named by routers.ROUTES)
    # ------------------------------------------------------------------

    async def handle_health(self, params: dict, body: dict) -> dict:
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started, 3),
            "durable": self.graph.persistence is not None,
        }

    async def handle_stats(self, params: dict, body: dict) -> dict:
        store = self.graph.store
        stats: dict[str, Any] = {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "requests": self.requests,
            "errors": self.errors,
            "sessions": self.sessions.session_count(),
            "statements": self.sessions.statements_executed,
            "snapshot_reads": self.sessions.snapshot_reads,
            "write_waits": self.sessions.write_waits,
            "nodes": store.node_count(),
            "relationships": store.relationship_count(),
            "dialect": self.graph.dialect.value,
        }
        if self.graph.persistence is not None:
            stats["wal_lsn"] = self.graph.persistence.lsn
        if self.committer is not None:
            stats["group_commit"] = self.committer.stats()
        return stats

    async def handle_query(self, params: dict, body: dict) -> dict:
        source, parameters = _statement_from(body)
        result, lsn = await self.sessions.execute(
            None, source, parameters
        )
        await self._wait_durable(lsn)
        return result_to_wire(result)

    async def handle_session_create(
        self, params: dict, body: dict
    ) -> dict:
        session = self.sessions.create()
        return {"session": session.id}

    async def handle_session_close(
        self, params: dict, body: dict
    ) -> dict:
        self.sessions.close(params["id"])
        return {"closed": params["id"]}

    async def handle_session_query(
        self, params: dict, body: dict
    ) -> dict:
        session = self.sessions.get(params["id"])
        source, parameters = _statement_from(body)
        result, lsn = await self.sessions.execute(
            session, source, parameters
        )
        await self._wait_durable(lsn)
        payload = result_to_wire(result)
        payload["in_transaction"] = session.in_transaction
        return payload

    async def handle_begin(self, params: dict, body: dict) -> dict:
        session = self.sessions.get(params["id"])
        self.sessions.begin(session)
        return {"session": session.id, "in_transaction": True}

    async def handle_commit(self, params: dict, body: dict) -> dict:
        session = self.sessions.get(params["id"])
        lsn = self.sessions.commit(session)
        await self._wait_durable(lsn)
        return {"session": session.id, "in_transaction": False}

    async def handle_rollback(self, params: dict, body: dict) -> dict:
        session = self.sessions.get(params["id"])
        self.sessions.rollback(session)
        return {"session": session.id, "in_transaction": False}

    async def handle_schema(self, params: dict, body: dict) -> dict:
        store = self.graph.store
        return {
            "indexes": [
                {"label": label, "key": key}
                for label, key in sorted(store._property_indexes)
            ],
            "constraints": [
                {"label": label, "key": key, "type": "unique"}
                for label, key in sorted(store.unique_constraints())
            ],
        }

    # ------------------------------------------------------------------
    # Materialized views and live subscriptions
    # ------------------------------------------------------------------

    def _views_registry(self):
        """The graph's view registry, wired for subscriber wakeups."""
        registry = self.graph.view_registry
        if not self._views_wired:
            registry.add_change_listener(self._on_view_commit)
            self._views_wired = True
        return registry

    def _on_view_commit(self, lsn: int) -> None:
        # Runs synchronously inside statement execution on the event
        # loop thread; waking subscribers is just flipping events.
        for subscription in self._subscriptions.values():
            subscription.event.set()

    def _view_payload(self, view) -> dict:
        result = view.result()
        self.config.limits.check_result_rows(len(result.records))
        return {
            "view": view.id,
            "mode": view.stats.mode,
            "columns": list(result.columns),
            "records": _wire_rows(result),
            "lsn": result.lsn,
            "covered_lsn": view.covered_lsn,
        }

    async def handle_views_list(self, params: dict, body: dict) -> dict:
        if self.graph._views is None:
            return {"views": []}
        return {"views": self._views_registry().stats()}

    async def handle_view_register(
        self, params: dict, body: dict
    ) -> dict:
        source, parameters = _statement_from(body)
        self.config.limits.check_statement_length(source)
        registry = self._views_registry()
        if len(registry) >= self.config.limits.max_views:
            raise ResourceLimitError(
                f"view limit of {self.config.limits.max_views} reached"
            )
        dialect = body.get("dialect") or self.graph.dialect.value
        view = registry.register(
            source, dialect=dialect, parameters=parameters
        )
        return self._view_payload(view)

    async def handle_view_result(self, params: dict, body: dict) -> dict:
        view = self._views_registry().get(params["id"])
        return self._view_payload(view)

    async def handle_view_drop(self, params: dict, body: dict) -> dict:
        registry = self._views_registry()
        registry.drop(params["id"])
        for sid, subscription in list(self._subscriptions.items()):
            if subscription.view_id == params["id"]:
                del self._subscriptions[sid]
                subscription.event.set()
        return {"dropped": params["id"]}

    async def handle_view_subscribe(
        self, params: dict, body: dict
    ) -> dict:
        limits = self.config.limits
        if len(self._subscriptions) >= limits.max_view_subscriptions:
            raise ResourceLimitError(
                f"subscription limit of "
                f"{limits.max_view_subscriptions} reached"
            )
        view = self._views_registry().get(params["id"])
        payload = self._view_payload(view)
        subscription = _Subscription(
            id=secrets.token_hex(8),
            view_id=view.id,
            baseline=payload["records"],
            delivered_lsn=payload["covered_lsn"],
        )
        self._subscriptions[subscription.id] = subscription
        payload["subscription"] = subscription.id
        return payload

    async def handle_view_changes(
        self, params: dict, body: dict
    ) -> dict:
        registry = self._views_registry()
        subscription = self._subscription_from(params, body)
        timeout = self.config.limits.clamp_poll_timeout(
            body.get("timeout_s")
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            view = registry.get(subscription.view_id)
            result = view.result()
            covered = view.covered_lsn
            if covered > subscription.delivered_lsn:
                rows = _wire_rows(result)
                added, removed = _diff_rows(subscription.baseline, rows)
                # Update the baseline *before* any await: the diff and
                # the delivered LSN move together atomically, so a
                # subscriber can never observe a result at an LSN newer
                # than its latest change notification (no torn diffs).
                subscription.baseline = rows
                subscription.delivered_lsn = covered
                if added or removed:
                    return {
                        "view": view.id,
                        "subscription": subscription.id,
                        "columns": list(result.columns),
                        "added": added,
                        "removed": removed,
                        "lsn": covered,
                        "timed_out": False,
                    }
                # Covered LSN advanced without a visible change
                # (irrelevant commits): keep waiting silently.
            remaining = deadline - loop.time()
            if remaining <= 0:
                return {
                    "view": subscription.view_id,
                    "subscription": subscription.id,
                    "added": [],
                    "removed": [],
                    "lsn": subscription.delivered_lsn,
                    "timed_out": True,
                }
            subscription.event.clear()
            try:
                await asyncio.wait_for(
                    subscription.event.wait(), remaining
                )
            except asyncio.TimeoutError:
                pass
            if subscription.id not in self._subscriptions:
                raise CypherError(
                    f"subscription {subscription.id!r} was closed"
                )

    async def handle_view_unsubscribe(
        self, params: dict, body: dict
    ) -> dict:
        subscription = self._subscriptions.pop(params["sid"], None)
        if subscription is None or subscription.view_id != params["id"]:
            raise CypherError(
                f"no subscription {params['sid']!r} on view "
                f"{params['id']!r}"
            )
        subscription.event.set()
        return {"unsubscribed": subscription.id}

    def _subscription_from(self, params: dict, body: dict):
        sid = body.get("subscription")
        subscription = (
            self._subscriptions.get(sid) if isinstance(sid, str) else None
        )
        if subscription is None or subscription.view_id != params["id"]:
            raise CypherError(
                f"no subscription {sid!r} on view {params['id']!r}"
            )
        return subscription

    async def handle_checkpoint(self, params: dict, body: dict) -> dict:
        if self.graph.persistence is None:
            raise PersistenceError(
                "graph has no persistence directory; nothing to checkpoint"
            )
        if self.committer is not None:
            await self.committer.wait_durable(self.graph.persistence.lsn)
        self.graph.checkpoint()
        from repro.persistence import CHECKPOINT_FORMAT

        return {
            "checkpointed": True,
            "format": CHECKPOINT_FORMAT,
            "lsn": self.graph.persistence.lsn,
        }


@dataclass
class _Subscription:
    """Server-side long-poll state for one view subscriber."""

    id: str
    view_id: str
    #: wire rows last delivered to (or seeded for) this subscriber
    baseline: list
    #: covered LSN of the baseline
    delivered_lsn: int
    event: asyncio.Event = field(default_factory=asyncio.Event)


def _wire_rows(result) -> list:
    """Wire form of a :class:`~repro.views.ViewResult`'s records."""
    columns = result.columns
    return [
        [to_wire(record[column]) for column in columns]
        for record in result.records
    ]


def _diff_rows(old: list, new: list) -> tuple[list, list]:
    """Multiset diff of wire rows: ``(added, removed)``.

    Rows are compared by canonical JSON; order of first appearance is
    preserved so diffs are deterministic.
    """

    def key(row) -> str:
        return json.dumps(row, sort_keys=True, default=str)

    counts: dict[str, int] = {}
    for row in old:
        k = key(row)
        counts[k] = counts.get(k, 0) + 1
    added = []
    for row in new:
        k = key(row)
        if counts.get(k, 0) > 0:
            counts[k] -= 1
        else:
            added.append(row)
    removed = []
    leftovers = dict(counts)
    for row in old:
        k = key(row)
        if leftovers.get(k, 0) > 0:
            leftovers[k] -= 1
            removed.append(row)
    return added, removed


def _error_body(error_type: str, message: str) -> dict:
    return {"error": {"type": error_type, "message": message}}


def _decode_body(body: bytes) -> dict:
    if not body:
        return {}
    try:
        payload = json.loads(body)
    except (ValueError, UnicodeDecodeError):
        raise CypherError("request body is not valid JSON") from None
    if not isinstance(payload, dict):
        raise CypherError("request body must be a JSON object")
    return payload


def _statement_from(body: dict) -> tuple[str, dict]:
    source = body.get("statement")
    if not isinstance(source, str):
        raise CypherError(
            'request body must carry a string "statement" field'
        )
    parameters = body.get("parameters") or {}
    if not isinstance(parameters, dict):
        raise CypherError('"parameters" must be a JSON object')
    return source, parameters
