"""Concurrent client sessions over one shared :class:`Graph`.

The engine executes statements synchronously on the event loop, so
statements never interleave *within* their execution -- what the
session layer adds is correct visibility *between* statements of
concurrent sessions:

* **Single writer.**  An asyncio write lock serialises mutation.  An
  autocommit write holds it for one statement; a declared transaction
  holds it from its first write statement until COMMIT/ROLLBACK, so
  no other session's write can interleave with an open transaction
  (the store's undo journal is a single stack -- interleaved writers
  would make rollback undo a bystander's committed work).

* **Lazy transaction scopes.**  ``begin`` only flags the session; the
  store-level :class:`~repro.session.Transaction` (and the write
  lock) is acquired at the transaction's *first write statement*.
  Read-only transactions therefore never block writers or other
  readers, and statements inside them see the same statement-level
  snapshot consistency as autocommit reads.

* **Snapshot reads.**  While a writer session holds an open
  transaction with uncommitted changes, read statements from every
  other session run inside
  :meth:`~repro.graph.store.GraphStore.reverted_to`, which rewinds
  the store to the transaction's start mark (the last committed
  state) and restores the uncommitted changes afterwards.  Readers
  never see uncommitted writes and never block; the writer's own
  reads run live and see its writes.

The isolation level is *read committed with statement-level snapshot
consistency*: each read statement observes one consistent committed
state, uncommitted changes are invisible, and a committed transaction
becomes visible atomically (all statements of the transaction at
once, never a prefix).
"""

from __future__ import annotations

import asyncio
import secrets
import time
from typing import Any, Mapping

from repro.engine import QueryResult, statement_is_read_only
from repro.errors import (
    CypherError,
    ResourceLimitError,
    TransactionError,
)
from repro.parser import ast
from repro.runtime.limits import list_length_limit
from repro.runtime.parallel import worker_limit
from repro.server.limits import RequestLimits
from repro.session import Graph, Transaction


class UnknownSessionError(CypherError):
    """A request referenced a session id that does not exist."""


class WriteBusyError(CypherError):
    """The write lock was not acquired within the configured timeout."""


def _contains_load_csv(
    statement: ast.Statement | ast.SchemaStatement,
) -> bool:
    if isinstance(statement, ast.SchemaStatement):
        return False

    def query_has(query: ast.Query) -> bool:
        if isinstance(query, ast.UnionQuery):
            return query_has(query.left) or query_has(query.right)
        return any(
            isinstance(clause, ast.LoadCsvClause)
            for clause in query.clauses
        )

    return query_has(statement.query)


class Session:
    """One client's scope: identity, liveness, transaction state."""

    def __init__(self, session_id: str):
        self.id = session_id
        self.created = time.monotonic()
        self.last_used = self.created
        #: client declared BEGIN (the store scope may not exist yet)
        self.tx_declared = False
        #: the store-level scope, opened at the first write statement
        self.transaction: Transaction | None = None
        self.statements = 0

    def touch(self) -> None:
        self.last_used = time.monotonic()

    @property
    def in_transaction(self) -> bool:
        return self.tx_declared


class SessionManager:
    """Session table + the write lock + the snapshot read path."""

    def __init__(self, graph: Graph, limits: RequestLimits | None = None):
        self.graph = graph
        self.limits = limits if limits is not None else RequestLimits()
        self._sessions: dict[str, Session] = {}
        self._write_lock = asyncio.Lock()
        #: the session holding the write lock across requests (open tx)
        self._writer: Session | None = None
        # counters for /stats
        self.statements_executed = 0
        self.snapshot_reads = 0
        self.write_waits = 0

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def create(self) -> Session:
        """Open a session (reaping idle ones, enforcing the cap)."""
        self._reap_idle()
        if len(self._sessions) >= self.limits.max_sessions:
            raise ResourceLimitError(
                f"session limit of {self.limits.max_sessions} reached"
            )
        session = Session(secrets.token_hex(8))
        self._sessions[session.id] = session
        return session

    def get(self, session_id: str) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(
                f"no session {session_id!r} (expired or never created)"
            )
        session.touch()
        return session

    def close(self, session_id: str) -> None:
        """Close a session, rolling back any open transaction."""
        session = self.get(session_id)
        if session.tx_declared:
            self.rollback(session)
        del self._sessions[session_id]

    def session_count(self) -> int:
        return len(self._sessions)

    def _reap_idle(self) -> None:
        deadline = time.monotonic() - self.limits.session_idle_timeout_s
        for session_id, session in list(self._sessions.items()):
            if session.last_used < deadline:
                self.close(session_id)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self, session: Session) -> None:
        if session.tx_declared:
            raise TransactionError(
                f"session {session.id} already has an open transaction"
            )
        session.tx_declared = True

    def commit(self, session: Session) -> int | None:
        """Commit; returns the WAL LSN to await for durability."""
        transaction = self._end_transaction(session)
        if transaction is None:
            return None
        try:
            transaction.commit()
        finally:
            self._release_writer(session)
        manager = self.graph.persistence
        return manager.lsn if manager is not None else None

    def rollback(self, session: Session) -> None:
        transaction = self._end_transaction(session)
        if transaction is None:
            return
        try:
            transaction.rollback()
        finally:
            self._release_writer(session)

    def _end_transaction(self, session: Session) -> Transaction | None:
        if not session.tx_declared:
            raise TransactionError(
                f"session {session.id} has no open transaction"
            )
        session.tx_declared = False
        transaction = session.transaction
        session.transaction = None
        return transaction

    def _release_writer(self, session: Session) -> None:
        if self._writer is session:
            self._writer = None
            self._write_lock.release()

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    async def execute(
        self,
        session: Session | None,
        source: str,
        parameters: Mapping[str, Any] | None = None,
    ) -> tuple[QueryResult, int | None]:
        """Run one statement for *session* (``None`` = sessionless).

        Returns ``(result, lsn)`` where *lsn* is the WAL record the
        caller must make durable before acknowledging, or ``None``
        when nothing needs syncing (reads, statements inside an open
        transaction -- their durability point is the COMMIT -- and
        non-durable graphs).
        """
        self.limits.check_statement_length(source)
        statement = self.graph.engine.parse(source)
        if not self.limits.allow_load_csv and _contains_load_csv(
            statement
        ):
            raise ResourceLimitError(
                "LOAD CSV is disabled on this server"
            )
        if session is not None:
            session.statements += 1
        self.statements_executed += 1

        if statement_is_read_only(statement):
            return self._execute_read(session, statement, parameters), None
        return await self._execute_write(session, statement, parameters)

    def _execute_read(
        self,
        session: Session | None,
        statement: ast.Statement,
        parameters: Mapping[str, Any] | None,
    ) -> QueryResult:
        writer = self._writer
        if (
            writer is not None
            and writer is not session
            and writer.transaction is not None
        ):
            # Another session has uncommitted writes: rewind to its
            # transaction's start mark (the last committed state).
            self.snapshot_reads += 1
            with self.graph.store.reverted_to(writer.transaction.mark):
                result = self._run(statement, parameters)
        else:
            result = self._run(statement, parameters)
        self.limits.check_result_rows(len(result.table))
        return result

    async def _execute_write(
        self,
        session: Session | None,
        statement: ast.Statement | ast.SchemaStatement,
        parameters: Mapping[str, Any] | None,
    ) -> tuple[QueryResult, int | None]:
        if session is not None and self._writer is session:
            # This session already holds the lock via its open scope.
            return self._run(statement, parameters), None
        await self._acquire_write_lock()
        try:
            if session is not None and session.tx_declared:
                # First write of a declared transaction: open the
                # store scope and keep the lock until COMMIT/ROLLBACK.
                session.transaction = Transaction(self.graph.store)
                self._writer = session
                return self._run(statement, parameters), None
            result = self._run(statement, parameters)
            manager = self.graph.persistence
            lsn = manager.lsn if manager is not None else None
            return result, lsn
        finally:
            if self._writer is not session or session is None:
                self._write_lock.release()

    async def _acquire_write_lock(self) -> None:
        if self._write_lock.locked():
            self.write_waits += 1
        try:
            await asyncio.wait_for(
                self._write_lock.acquire(),
                timeout=self.limits.write_lock_timeout_s,
            )
        except asyncio.TimeoutError:
            raise WriteBusyError(
                f"write lock not acquired within "
                f"{self.limits.write_lock_timeout_s}s (another "
                f"session's transaction is still open)"
            ) from None

    def _run(
        self,
        statement: ast.Statement | ast.SchemaStatement,
        parameters: Mapping[str, Any] | None,
    ) -> QueryResult:
        with list_length_limit(self.limits.max_list_length), worker_limit(
            self.limits.max_workers
        ):
            return self.graph.engine.execute(statement, parameters)
