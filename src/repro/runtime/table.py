"""Driving tables.

"In the context of Cypher, tables are bags, or multisets, of consistent
records, i.e. of key-value maps with the same set of keys" (Section 2).
A :class:`DrivingTable` is exactly that: an ordered list of records
(dicts) sharing one column set.  The *order* of the list is an
implementation detail -- the language treats tables as unordered bags --
and that gap is precisely what the paper's nondeterminism results
exploit: the legacy executor processes records in list order, so
:meth:`reversed` / :meth:`shuffled` let experiments demonstrate
order-dependent outcomes (Example 3), while the revised semantics is
insensitive to it.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import CypherError
from repro.graph.comparison import value_signature
from repro.graph.values import grouping_key

Record = dict

_SENTINEL = object()


class DrivingTable:
    """A bag of consistent records with a fixed column set."""

    __slots__ = ("_columns", "_column_set", "_records")

    def __init__(
        self,
        columns: Iterable[str] = (),
        records: Iterable[Mapping[str, Any]] | None = None,
    ):
        self._columns = tuple(columns)
        self._column_set = frozenset(self._columns)
        if len(self._column_set) != len(self._columns):
            raise CypherError("duplicate column names in driving table")
        self._records: list[Record] = []
        check = self._check
        append = self._records.append
        for record in records or ():
            append(check(record, self._column_set))

    def _check(
        self, record: Mapping[str, Any], column_set: frozenset[str]
    ) -> Record:
        if set(record) != column_set:
            raise CypherError(
                f"inconsistent record: expected columns {sorted(column_set)}, "
                f"got {sorted(record)}"
            )
        return dict(record)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def unit(cls) -> "DrivingTable":
        """The table containing the single empty record ().

        Query evaluation starts from this table (Section 8.1).
        """
        table = cls()
        table._records.append({})
        return table

    @classmethod
    def empty(cls, columns: Iterable[str] = ()) -> "DrivingTable":
        """A table with the given columns and no records."""
        return cls(columns=columns)

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, Any]]
    ) -> "DrivingTable":
        """Build a table from dicts, inferring columns from the first."""
        records = list(records)
        if not records:
            return cls()
        return cls(columns=tuple(records[0]), records=records)

    @classmethod
    def from_trusted(
        cls, columns: Iterable[str], records: list[Record]
    ) -> "DrivingTable":
        """Adopt *records* without validation or copying.

        Engine-internal fast path: callers guarantee every element is a
        ``dict`` whose key set equals *columns*.  The list is adopted,
        not copied, so the caller must hand over ownership.
        """
        table = cls.__new__(cls)
        table._columns = tuple(columns)
        table._column_set = frozenset(table._columns)
        table._records = records
        return table

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        """The column names."""
        return self._columns

    @property
    def records(self) -> list[Record]:
        """The underlying record list (do not mutate)."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def __eq__(self, other: object) -> bool:
        """Bag equality: same columns, same records as a multiset."""
        if not isinstance(other, DrivingTable):
            return NotImplemented
        if self._column_set != other._column_set:
            return False
        return sorted(
            (self._record_key(r) for r in self._records)
        ) == sorted(other._record_key(r) for r in other._records)

    def __hash__(self) -> int:  # pragma: no cover - tables are not hashed
        raise TypeError("DrivingTable is unhashable")

    def _record_key(self, record: Record) -> tuple:
        # value_signature is total (never raises), unlike grouping_key,
        # so tables holding exotic values still compare.
        return tuple(
            value_signature(record[column])
            for column in sorted(self._columns)
        )

    # ------------------------------------------------------------------
    # Bag operations
    # ------------------------------------------------------------------

    def add(self, record: Mapping[str, Any]) -> None:
        """Append one record (must match the column set)."""
        if not self._columns and not self._records and record:
            self._columns = tuple(record)
            self._column_set = frozenset(self._columns)
        self._records.append(self._check(record, self._column_set))

    def extend(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Append many records (validation hoisted out of the loop)."""
        records = iter(records)
        first = next(records, _SENTINEL)
        if first is not _SENTINEL:
            self.add(first)
        column_set = self._column_set
        check = self._check
        append = self._records.append
        for record in records:
            append(check(record, column_set))

    def chunks(self, size: int) -> list["DrivingTable"]:
        """Consecutive views of at most *size* records each.

        The views share the underlying record dicts (no copying); they
        are the unit of work for the morsel scheduler.  Concatenating
        the chunks' records in order reproduces this table exactly.
        """
        if size < 1:
            raise ValueError("chunk size must be >= 1")
        return [
            DrivingTable.from_trusted(
                self._columns, self._records[start : start + size]
            )
            for start in range(0, len(self._records), size)
        ]

    def concat(self, other: "DrivingTable") -> "DrivingTable":
        """Bag union (duplicates add up), requiring equal column sets."""
        if set(self._columns) != set(other._columns):
            raise CypherError(
                "UNION requires the same columns on both sides: "
                f"{sorted(self._columns)} vs {sorted(other._columns)}"
            )
        result = DrivingTable(self._columns)
        result._records = [dict(r) for r in self._records]
        for record in other._records:
            result._records.append(
                {column: record[column] for column in self._columns}
                if self._columns
                else dict(record)
            )
        return result

    def distinct(self) -> "DrivingTable":
        """Set-semantics copy: one record per equivalence class."""
        result = DrivingTable(self._columns)
        seen: set = set()
        for record in self._records:
            key = tuple(
                grouping_key(record[column]) for column in self._columns
            )
            if key not in seen:
                seen.add(key)
                result._records.append(dict(record))
        return result

    def map(self, function: Callable[[Record], Record]) -> "DrivingTable":
        """A new table from applying *function* to each record."""
        return DrivingTable.from_records(
            [function(record) for record in self._records]
        )

    def filter(self, predicate: Callable[[Record], bool]) -> "DrivingTable":
        """A new table keeping records where *predicate* is True."""
        result = DrivingTable(self._columns)
        result._records = [dict(r) for r in self._records if predicate(r)]
        return result

    def copy(self) -> "DrivingTable":
        """A shallow copy (records copied, values shared)."""
        result = DrivingTable(self._columns)
        result._records = [dict(r) for r in self._records]
        return result

    # ------------------------------------------------------------------
    # Record-order controls (nondeterminism experiments)
    # ------------------------------------------------------------------

    def reversed(self) -> "DrivingTable":
        """Copy with records in reverse order.

        Example 3 of the paper contrasts top-down vs bottom-up
        processing of the same bag; this is "bottom-up".
        """
        result = DrivingTable(self._columns)
        result._records = [dict(r) for r in reversed(self._records)]
        return result

    def shuffled(self, seed: int) -> "DrivingTable":
        """Copy with records shuffled by a seeded RNG."""
        result = self.copy()
        random.Random(seed).shuffle(result._records)
        return result

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """Plain list-of-dicts copy of the records."""
        return [dict(record) for record in self._records]

    def column_values(self, column: str) -> list[Any]:
        """All values in one column, in record order."""
        return [record[column] for record in self._records]

    def pretty(self, max_rows: int = 20) -> str:
        """Fixed-width text rendering (for examples and the harness)."""
        columns = self._columns or ("(no columns)",)
        rows = [
            tuple(
                _render(record.get(column)) for column in self._columns
            ) or ("()",)
            for record in self._records[:max_rows]
        ]
        widths = [
            max(len(str(column)), *(len(row[i]) for row in rows), 1)
            if rows
            else len(str(column))
            for i, column in enumerate(columns)
        ]
        header = " | ".join(
            str(column).ljust(width) for column, width in zip(columns, widths)
        )
        separator = "-+-".join("-" * width for width in widths)
        lines = [header, separator]
        for row in rows:
            lines.append(
                " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        if len(self._records) > max_rows:
            lines.append(f"... ({len(self._records) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DrivingTable(columns={list(self._columns)}, "
            f"{len(self._records)} records)"
        )


def _render(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)
