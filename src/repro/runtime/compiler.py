"""A caching expression compiler: AST -> nested Python closures.

The interpreter in :mod:`repro.runtime.expressions` re-dispatches on
the AST node type for every row that flows through the clause pipeline.
This module performs that dispatch **once per distinct expression**:
:func:`compile_expression` lowers an :class:`~repro.parser.ast.Expression`
into a tree of closures, each a direct call to its children, so the
per-row cost is plain Python calls with all compile-time decisions
(operator lookup, function resolution, arity checks, aggregate
detection) already taken.

Guarantees:

* **Identical semantics.**  Compiled closures produce the same values
  *and raise the same errors* (class and message) as
  :func:`repro.runtime.expressions.interpret`, including three-valued
  AND/OR/XOR (both operands are always evaluated, exactly like the
  interpreter), null propagation, IEEE division edge cases and int64
  overflow.  ``tests/properties/test_compiler_equivalence.py`` holds
  this contract over every expression form.
* **Compile once.**  Closures are memoized per AST node in a bounded
  LRU (AST nodes are frozen dataclasses, shared via the engine's
  statement cache, so re-running a query is a pure cache hit).  Nodes
  with unhashable literal payloads (possible through aggregate
  substitution) are compiled fresh each time -- correct, just uncached.
* **Constant folding.**  Operator applications whose operands are
  literal scalars are evaluated at compile time; a folding step that
  *raises* (``1/0``, int64 overflow) compiles to a closure re-raising
  the same error at evaluation time, preserving error semantics.

``compilation_disabled()`` switches :func:`compile_expression` (and the
map helper) to closures that delegate to the reference interpreter --
the benchmark harness uses this to measure interpreted-vs-compiled
speedup over identical workloads.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping, Optional

from repro.caching import LRUCache
from repro.errors import (
    CypherError,
    CypherEvaluationError,
    CypherTypeError,
    ParameterMissingError,
    UnknownVariableError,
)
from repro.graph.model import Node, Relationship
from repro.graph.values import cypher_eq, type_name
from repro.parser import ast
from repro.runtime.aggregation import is_aggregate_call
from repro.runtime.context import EvalContext
from repro.runtime.functions import _ACCEPTS_NULL, FUNCTIONS

#: A compiled expression: ``(ctx, record) -> value``.
Compiled = Callable[[EvalContext, Mapping[str, Any]], Any]

#: Compiled closures memoized per AST node; an entry is ``(fn, is_const)``.
_CACHE = LRUCache(capacity=16384)

#: Compiled pattern property maps, memoized per MapLiteral node.
_MAP_CACHE = LRUCache(capacity=4096)

_ENABLED = True

#: Scalar types safe to bake into a constant closure (immutable, and
#: exactly the types a parsed ``ast.Literal`` can carry).
_CONST_SCALARS = (type(None), bool, int, float, str)

#: Hoisted subtrees are variable-free, so they evaluate against an
#: empty record; a mistakenly-hoisted variable fails loudly instead of
#: capturing the first record's binding.
_EMPTY_RECORD: dict = {}


class CompilerStats:
    """Module-wide compilation counters (snapshot-diffed by PROFILE)."""

    __slots__ = ("expressions_compiled", "cache_hits", "constant_folded")

    def __init__(self) -> None:
        self.expressions_compiled = 0
        self.cache_hits = 0
        self.constant_folded = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy of the counters."""
        return {
            "expressions_compiled": self.expressions_compiled,
            "cache_hits": self.cache_hits,
            "constant_folded": self.constant_folded,
        }

    def reset(self) -> None:
        self.expressions_compiled = 0
        self.cache_hits = 0
        self.constant_folded = 0


STATS = CompilerStats()


def compile_expression(expression: ast.Expression) -> Compiled:
    """The compiled closure for *expression* (memoized per AST node)."""
    return _compiled(expression)[0]


def compilation_enabled() -> bool:
    """True unless inside a :func:`compilation_disabled` block."""
    return _ENABLED


@contextmanager
def compilation_disabled() -> Iterator[None]:
    """Temporarily route all evaluation through the interpreter.

    Used by the benchmark harness (interpreted baseline) and the
    equivalence tests; nesting is allowed.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the closure cache."""
    return _CACHE.info()


def clear_cache() -> None:
    """Drop all memoized closures (tests and memory pressure)."""
    _CACHE.clear()
    _MAP_CACHE.clear()


def compile_map_items(
    properties: ast.MapLiteral,
) -> tuple[tuple[str, Compiled], ...]:
    """Compile a property map to ``((key, fn), ...)`` pairs (memoized).

    Pattern property maps (node/relationship ``{k: e}`` annotations and
    CREATE/MERGE value maps) are the per-row hottest expressions; this
    helper lets the matcher and the update clauses evaluate each map
    expression exactly once per record.
    """
    if not _ENABLED:
        interpret = _interpreter()
        return tuple(
            (key, _interpreting(interpret, value))
            for key, value in properties.items
        )
    entry = _MAP_CACHE.get(properties)
    if entry is not None:
        return entry
    entry = tuple(
        (key, compile_expression(value)) for key, value in properties.items
    )
    _MAP_CACHE.put(properties, entry)
    return entry


# ---------------------------------------------------------------------------
# Internal machinery
# ---------------------------------------------------------------------------

_interpret_fn = None
_exprs_module = None


def _interpreter():
    """The reference interpreter, bound lazily (import cycle guard)."""
    global _interpret_fn
    if _interpret_fn is None:
        from repro.runtime.expressions import interpret

        _interpret_fn = interpret
    return _interpret_fn


def _exprs():
    """The expressions module, bound lazily (operator tables, helpers)."""
    global _exprs_module
    if _exprs_module is None:
        from repro.runtime import expressions

        _exprs_module = expressions
    return _exprs_module


def _interpreting(interpret, expression: ast.Expression) -> Compiled:
    def interpreted(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
        return interpret(ctx, expression, record)

    return interpreted


def _compiled(expression: ast.Expression) -> tuple[Compiled, bool]:
    """``(closure, is_const)`` for a node, via the memo cache."""
    if not _ENABLED:
        return _interpreting(_interpreter(), expression), False
    entry = _CACHE.get(expression)
    if entry is not None:
        STATS.cache_hits += 1
        return entry
    entry = _compile(expression)
    _CACHE.put(expression, entry)
    return entry


def _const(value: Any) -> tuple[Compiled, bool]:
    def constant(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
        return value

    return constant, True


def _raising(error_class: type, *args: Any) -> Compiled:
    """A closure that re-raises a compile-time-detected error at runtime."""

    def refuse(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
        raise error_class(*args)

    return refuse


def _try_fold(fn: Compiled) -> tuple[Compiled, bool]:
    """Fold an all-constant operator application at compile time.

    If folding raises a Cypher error (``1/0``, overflow, a type error
    on literals) the result is a closure raising the same error class
    with the same arguments -- evaluation-time semantics preserved.
    """
    try:
        value = fn(None, {})  # const operands never touch ctx/record
    except CypherError as error:
        return _raising(type(error), *error.args), False
    if isinstance(value, _CONST_SCALARS):
        STATS.constant_folded += 1
        return _const(value)
    return fn, False


def _compile(expression: ast.Expression) -> tuple[Compiled, bool]:
    """Dispatch on the node type; executed once per distinct node."""
    STATS.expressions_compiled += 1

    if isinstance(expression, ast.HoistedExpression):
        # Record-invariant subtree (rewrite pass): evaluate lazily, at
        # most once per EvalContext, and reuse the value for every
        # record.  Laziness preserves error semantics exactly -- a
        # segment with zero records never evaluates, and the first
        # record to need the value surfaces any error just as the
        # unhoisted expression would.  The cell keeps a strong ref to
        # its ctx so an id-reused context can never alias a stale value.
        inner_fn, inner_const = _compiled(expression.expression)
        if inner_const:
            return inner_fn, True
        cell: list = [None]

        def hoisted(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            cached = cell[0]
            if cached is not None and cached[0] is ctx:
                return cached[1]
            value = inner_fn(ctx, _EMPTY_RECORD)
            cell[0] = (ctx, value)
            return value

        return hoisted, False

    if isinstance(expression, ast.Literal):
        value = expression.value
        if isinstance(value, _CONST_SCALARS):
            return _const(value)

        def literal(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            return value

        return literal, False

    if isinstance(expression, ast.Parameter):
        name = expression.name
        message = f"missing parameter ${name}"

        def parameter(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            parameters = ctx.parameters
            if name not in parameters:
                raise ParameterMissingError(message)
            return parameters[name]

        return parameter, False

    if isinstance(expression, ast.Variable):
        name = expression.name
        message = f"variable '{name}' is not defined"

        def variable(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            try:
                return record[name]
            except KeyError:
                raise UnknownVariableError(message) from None

        return variable, False

    if isinstance(expression, ast.Property):
        subject_fn = _compiled(expression.subject)[0]
        key = expression.key

        def prop(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            subject = subject_fn(ctx, record)
            if subject is None:
                return None
            if isinstance(subject, (Node, Relationship, dict)):
                return subject.get(key)
            raise CypherTypeError(
                f"cannot read property '{key}' of {type_name(subject)}"
            )

        return prop, False

    if isinstance(expression, ast.ListLiteral):
        item_fns = tuple(_compiled(item)[0] for item in expression.items)

        def list_literal(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            return [fn(ctx, record) for fn in item_fns]

        return list_literal, False

    if isinstance(expression, ast.MapLiteral):
        pairs = tuple(
            (key, _compiled(value)[0]) for key, value in expression.items
        )

        def map_literal(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            return {key: fn(ctx, record) for key, fn in pairs}

        return map_literal, False

    if isinstance(expression, ast.Unary):
        op = _exprs().UNARY_OPS[expression.operator]
        operand_fn, operand_const = _compiled(expression.operand)

        def unary(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            return op(operand_fn(ctx, record))

        if operand_const:
            return _try_fold(unary)
        return unary, False

    if isinstance(expression, ast.Binary):
        return _compile_binary(expression)

    if isinstance(expression, ast.IsNull):
        operand_fn, operand_const = _compiled(expression.operand)
        if expression.negated:

            def is_not_null(
                ctx: EvalContext, record: Mapping[str, Any]
            ) -> Any:
                return operand_fn(ctx, record) is not None

            checked = is_not_null
        else:

            def is_null(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
                return operand_fn(ctx, record) is None

            checked = is_null
        if operand_const:
            return _try_fold(checked)
        return checked, False

    if isinstance(expression, ast.HasLabels):
        subject_fn = _compiled(expression.subject)[0]
        labels = expression.labels

        def has_labels(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            subject = subject_fn(ctx, record)
            if subject is None:
                return None
            if not isinstance(subject, Node):
                raise CypherTypeError(
                    f"label predicate expects a Node, "
                    f"got {type_name(subject)}"
                )
            return all(subject.has_label(label) for label in labels)

        return has_labels, False

    if isinstance(expression, ast.FunctionCall):
        return _compile_function_call(expression)

    if isinstance(expression, ast.CountStar):
        return (
            _raising(
                CypherEvaluationError,
                "count(*) is only allowed in RETURN and WITH projections",
            ),
            False,
        )

    if isinstance(expression, ast.CaseExpression):
        return _compile_case(expression)

    if isinstance(expression, ast.ListComprehension):
        return _compile_list_comprehension(expression)

    if isinstance(expression, ast.Quantifier):
        return _compile_quantifier(expression)

    if isinstance(expression, ast.Reduce):
        return _compile_reduce(expression)

    if isinstance(expression, ast.Subscript):
        subscript_value = _exprs().subscript_value
        subject_fn = _compiled(expression.subject)[0]
        index_fn = _compiled(expression.index)[0]

        def subscript(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            return subscript_value(
                subject_fn(ctx, record), index_fn(ctx, record)
            )

        return subscript, False

    if isinstance(expression, ast.Slice):
        return _compile_slice(expression)

    if isinstance(expression, ast.PatternExpression):
        pattern_predicate = _exprs().pattern_predicate
        pattern = expression.pattern

        def pattern_expression(
            ctx: EvalContext, record: Mapping[str, Any]
        ) -> Any:
            return pattern_predicate(ctx, pattern, record)

        return pattern_expression, False

    if isinstance(expression, ast.ExistsExpression):
        if isinstance(expression.argument, ast.PathPattern):
            pattern_predicate = _exprs().pattern_predicate
            pattern = expression.argument

            def exists_pattern(
                ctx: EvalContext, record: Mapping[str, Any]
            ) -> Any:
                return pattern_predicate(ctx, pattern, record)

            return exists_pattern, False
        argument_fn = _compiled(expression.argument)[0]

        def exists(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            return argument_fn(ctx, record) is not None

        return exists, False

    return (
        _raising(
            CypherEvaluationError,
            f"cannot evaluate expression {type(expression).__name__}",
        ),
        False,
    )


def _compile_binary(expression: ast.Binary) -> tuple[Compiled, bool]:
    exprs = _exprs()
    operator = expression.operator
    left_fn, left_const = _compiled(expression.left)
    right_fn, right_const = _compiled(expression.right)
    both_const = left_const and right_const
    boolean_op = exprs.BOOLEAN_OPS.get(operator)
    if boolean_op is not None:
        # Three-valued connectives evaluate BOTH operands, exactly like
        # the interpreter: `false AND error` must still raise.

        def connective(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            return boolean_op(left_fn(ctx, record), right_fn(ctx, record))

        if both_const:
            return _try_fold(connective)
        return connective, False
    op = exprs.BINARY_OPS.get(operator)
    if op is None:
        # The interpreter evaluates operands before rejecting the
        # operator; preserve that order.
        message = f"unknown operator {operator}"

        def unknown(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            left_fn(ctx, record)
            right_fn(ctx, record)
            raise CypherEvaluationError(message)

        return unknown, False

    def binary(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
        return op(left_fn(ctx, record), right_fn(ctx, record))

    if both_const:
        return _try_fold(binary)
    return binary, False


def _compile_function_call(
    expression: ast.FunctionCall,
) -> tuple[Compiled, bool]:
    name = expression.name
    arg_fns = tuple(_compiled(arg)[0] for arg in expression.args)
    if is_aggregate_call(expression):
        return (
            _raising(
                CypherEvaluationError,
                f"aggregate {name}() is only allowed in "
                f"RETURN and WITH projections",
            ),
            False,
        )

    def _evaluating_raiser(error_class: type, message: str) -> Compiled:
        # The interpreter evaluates arguments before dispatching, so
        # argument errors win over lookup/arity errors.
        def evaluate_then_raise(
            ctx: EvalContext, record: Mapping[str, Any]
        ) -> Any:
            for fn in arg_fns:
                fn(ctx, record)
            raise error_class(message)

        return evaluate_then_raise

    entry = FUNCTIONS.get(name)
    if entry is None:
        return (
            _evaluating_raiser(
                CypherEvaluationError, f"unknown function {name}()"
            ),
            False,
        )
    min_arity, max_arity, implementation = entry
    if not min_arity <= len(arg_fns) <= max_arity:
        expected = (
            str(min_arity)
            if min_arity == max_arity
            else f"{min_arity}..{max_arity}"
        )
        return (
            _evaluating_raiser(
                CypherEvaluationError,
                f"{name}() expects {expected} argument(s), "
                f"got {len(arg_fns)}",
            ),
            False,
        )
    if name in _ACCEPTS_NULL:

        def call_accepting_null(
            ctx: EvalContext, record: Mapping[str, Any]
        ) -> Any:
            return implementation(
                ctx, *[fn(ctx, record) for fn in arg_fns]
            )

        return call_accepting_null, False
    if len(arg_fns) == 1:
        arg_fn = arg_fns[0]

        def call_unary(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            arg = arg_fn(ctx, record)
            if arg is None:
                return None
            return implementation(ctx, arg)

        return call_unary, False

    def call(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
        args = [fn(ctx, record) for fn in arg_fns]
        if any(arg is None for arg in args):
            return None
        return implementation(ctx, *args)

    return call, False


def _compile_case(expression: ast.CaseExpression) -> tuple[Compiled, bool]:
    alternatives = tuple(
        (_compiled(condition)[0], _compiled(result)[0])
        for condition, result in expression.alternatives
    )
    default_fn: Optional[Compiled] = (
        _compiled(expression.default)[0]
        if expression.default is not None
        else None
    )
    if expression.operand is not None:
        operand_fn = _compiled(expression.operand)[0]

        def simple_case(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
            operand = operand_fn(ctx, record)
            for condition_fn, result_fn in alternatives:
                if cypher_eq(operand, condition_fn(ctx, record)) is True:
                    return result_fn(ctx, record)
            if default_fn is not None:
                return default_fn(ctx, record)
            return None

        return simple_case, False

    def searched_case(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
        for condition_fn, result_fn in alternatives:
            if condition_fn(ctx, record) is True:
                return result_fn(ctx, record)
        if default_fn is not None:
            return default_fn(ctx, record)
        return None

    return searched_case, False


def _compile_list_comprehension(
    expression: ast.ListComprehension,
) -> tuple[Compiled, bool]:
    variable = expression.variable
    source_fn = _compiled(expression.source)[0]
    predicate_fn: Optional[Compiled] = (
        _compiled(expression.predicate)[0]
        if expression.predicate is not None
        else None
    )
    projection_fn: Optional[Compiled] = (
        _compiled(expression.projection)[0]
        if expression.projection is not None
        else None
    )

    def list_comprehension(
        ctx: EvalContext, record: Mapping[str, Any]
    ) -> Any:
        source = source_fn(ctx, record)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError(
                f"list comprehension expects a List, got {type_name(source)}"
            )
        result = []
        inner = dict(record)
        for element in source:
            inner[variable] = element
            if predicate_fn is not None:
                if predicate_fn(ctx, inner) is not True:
                    continue
            if projection_fn is not None:
                result.append(projection_fn(ctx, inner))
            else:
                result.append(element)
        return result

    return list_comprehension, False


def _compile_reduce(
    expression: ast.Reduce,
) -> tuple[Compiled, bool]:
    accumulator_name = expression.accumulator
    variable = expression.variable
    init_fn = _compiled(expression.init)[0]
    source_fn = _compiled(expression.source)[0]
    expression_fn = _compiled(expression.expression)[0]

    def reduce_expression(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
        source = source_fn(ctx, record)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError(
                f"reduce() expects a List, got {type_name(source)}"
            )
        accumulator = init_fn(ctx, record)
        inner = dict(record)
        for element in source:
            inner[accumulator_name] = accumulator
            inner[variable] = element
            accumulator = expression_fn(ctx, inner)
        return accumulator

    return reduce_expression, False


def _compile_quantifier(
    expression: ast.Quantifier,
) -> tuple[Compiled, bool]:
    quantifier_outcome = _exprs().quantifier_outcome
    kind = expression.kind
    variable = expression.variable
    source_fn = _compiled(expression.source)[0]
    predicate_fn = _compiled(expression.predicate)[0]

    def quantifier(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
        source = source_fn(ctx, record)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError(
                f"{kind}() expects a List, got {type_name(source)}"
            )
        true_count = 0
        null_count = 0
        inner = dict(record)
        for element in source:
            inner[variable] = element
            outcome = predicate_fn(ctx, inner)
            if outcome is True:
                true_count += 1
            elif outcome is None:
                null_count += 1
        false_count = len(source) - true_count - null_count
        return quantifier_outcome(kind, true_count, null_count, false_count)

    return quantifier, False


def _compile_slice(expression: ast.Slice) -> tuple[Compiled, bool]:
    slice_value = _exprs().slice_value
    subject_fn = _compiled(expression.subject)[0]
    start_fn: Optional[Compiled] = (
        _compiled(expression.start)[0]
        if expression.start is not None
        else None
    )
    end_fn: Optional[Compiled] = (
        _compiled(expression.end)[0] if expression.end is not None else None
    )

    def slice_(ctx: EvalContext, record: Mapping[str, Any]) -> Any:
        subject = subject_fn(ctx, record)
        if subject is None:
            return None
        if not isinstance(subject, list):
            raise CypherTypeError(f"cannot slice {type_name(subject)}")
        start = start_fn(ctx, record) if start_fn is not None else 0
        end = end_fn(ctx, record) if end_fn is not None else len(subject)
        return slice_value(subject, start, end)

    return slice_, False
