"""Evaluation resource limits.

Unbounded intermediate values are a denial-of-service vector the
moment statements arrive over a network: ``range(0, 2^62)`` would
materialise a multi-exabyte list before the first row is returned.
Functions that materialise lists of a computable size consult
:func:`max_list_length` *before* allocating and raise
:class:`~repro.errors.ResourceLimitError` when the result would
exceed it.

The limit is a module-level default (generous enough that no
legitimate in-process workload notices) with a scoped override::

    with list_length_limit(100_000):
        engine.execute(statement)   # server per-request cap

Overrides nest; each scope restores the previous value on exit, so a
request handler cannot leak a tightened (or loosened) limit into the
next request.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.errors import ResourceLimitError

#: Default cap on function-materialised list lengths (``range()``...).
DEFAULT_MAX_LIST_LENGTH = 10_000_000

_max_list_length = DEFAULT_MAX_LIST_LENGTH


def max_list_length() -> int:
    """The list-length cap active in the current scope."""
    return _max_list_length


def check_list_length(count: int, what: str) -> None:
    """Raise :class:`ResourceLimitError` if *count* exceeds the cap."""
    limit = _max_list_length
    if count > limit:
        raise ResourceLimitError(
            f"{what} would produce {count} elements, exceeding the "
            f"list-length limit of {limit}"
        )


@contextmanager
def list_length_limit(limit: int) -> Iterator[None]:
    """Scoped override of the list-length cap (nestable)."""
    global _max_list_length
    if limit < 1:
        raise ValueError("list-length limit must be >= 1")
    previous = _max_list_length
    _max_list_length = limit
    try:
        yield
    finally:
        _max_list_length = previous
