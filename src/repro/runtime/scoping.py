"""Static variable-scope checking.

The runtime evaluator reports unknown variables only when an expression
is actually evaluated -- which never happens for clauses driven by an
empty table, so a typo like ``RETURN usr.name`` after a non-matching
MATCH would silently return nothing.  This checker walks a parsed
statement *before* execution, tracking the variables each clause
introduces and the scope narrowing performed by WITH/RETURN, and raises
:class:`~repro.errors.UnknownVariableError` /
:class:`~repro.errors.CypherSemanticError` eagerly.

Scope rules implemented:

* MATCH / CREATE / MERGE patterns introduce their node, relationship
  and path variables; re-using a bound variable in a pattern is legal
  (it constrains the match or re-uses the entity);
* UNWIND and LOAD CSV introduce their row variable (re-binding a name
  already in scope is an error);
* WITH and RETURN replace the scope with their output columns; ORDER BY
  inside them may reference both the old and the new scope;
* FOREACH introduces its loop variable for the inner updates only;
* list comprehensions and quantifiers introduce a local variable for
  their own sub-expressions;
* variables inside pattern *predicates* are existential: unknown names
  there are allowed (they quantify, not reference).
"""

from __future__ import annotations

from repro.errors import CypherSemanticError, UnknownVariableError
from repro.parser import ast


def check_statement(
    statement: ast.Statement, initial: frozenset[str] = frozenset()
) -> None:
    """Validate variable usage; raises on the first violation."""
    for branch in statement.branches():
        _check_clauses(branch.clauses, set(initial))


def _check_clauses(clauses: tuple[ast.Clause, ...], scope: set[str]) -> None:
    for clause in clauses:
        scope = _check_clause(clause, scope)


def _check_clause(clause: ast.Clause, scope: set[str]) -> set[str]:
    if isinstance(clause, ast.MatchClause):
        scope = _check_pattern(clause.pattern, scope, allow_new=True)
        if clause.where is not None:
            _check_expression(clause.where, scope)
        return scope
    if isinstance(clause, ast.UnwindClause):
        _check_expression(clause.expression, scope)
        if clause.variable in scope:
            raise CypherSemanticError(
                f"variable '{clause.variable}' is already bound"
            )
        return scope | {clause.variable}
    if isinstance(clause, ast.LoadCsvClause):
        _check_expression(clause.source, scope)
        if clause.variable in scope:
            raise CypherSemanticError(
                f"variable '{clause.variable}' is already bound"
            )
        return scope | {clause.variable}
    if isinstance(clause, (ast.WithClause, ast.ReturnClause)):
        body = clause.body
        output: set[str] = set()
        if body.include_existing:
            output |= scope
        for item in body.items:
            _check_expression(item.expression, scope)
            name = item.alias or (
                item.expression.name
                if isinstance(item.expression, ast.Variable)
                else None
            )
            if name is not None:
                output.add(name)
        for sort_item in body.order_by:
            _check_expression(sort_item.expression, scope | output)
        if isinstance(clause, ast.WithClause) and clause.where is not None:
            _check_expression(clause.where, output)
        return output
    if isinstance(clause, ast.CreateClause):
        return _check_pattern(clause.pattern, scope, allow_new=True)
    if isinstance(clause, ast.MergeClause):
        scope = _check_pattern(clause.pattern, scope, allow_new=True)
        for item in clause.on_create + clause.on_match:
            _check_set_item(item, scope)
        return scope
    if isinstance(clause, ast.DeleteClause):
        for expression in clause.expressions:
            _check_expression(expression, scope)
        return scope
    if isinstance(clause, ast.SetClause):
        for item in clause.items:
            _check_set_item(item, scope)
        return scope
    if isinstance(clause, ast.RemoveClause):
        for item in clause.items:
            if isinstance(item, ast.RemoveProperty):
                _check_expression(item.target, scope)
            else:
                _check_expression(item.target, scope)
        return scope
    if isinstance(clause, ast.ForeachClause):
        _check_expression(clause.source, scope)
        if clause.variable in scope:
            raise CypherSemanticError(
                f"variable '{clause.variable}' is already bound"
            )
        inner = scope | {clause.variable}
        for update in clause.updates:
            inner = _check_clause(update, inner)
        return scope
    return scope


def _check_set_item(item: ast.SetItem, scope: set[str]) -> None:
    if isinstance(item, ast.SetProperty):
        _check_expression(item.target, scope)
        _check_expression(item.value, scope)
    elif isinstance(item, (ast.SetAllProperties, ast.SetAdditiveProperties)):
        _check_expression(item.target, scope)
        _check_expression(item.value, scope)
    elif isinstance(item, ast.SetLabels):
        _check_expression(item.target, scope)


def _check_pattern(
    pattern: ast.Pattern, scope: set[str], *, allow_new: bool
) -> set[str]:
    scope = set(scope)
    for path in pattern.paths:
        if path.variable is not None:
            if path.variable in scope:
                raise CypherSemanticError(
                    f"path variable '{path.variable}' is already bound"
                )
            scope.add(path.variable)
        for element in path.elements:
            if element.variable is not None:
                scope.add(element.variable)
            if element.properties is not None:
                for __, expression in element.properties.items:
                    _check_expression(expression, scope)
    return scope


def _check_expression(expression: ast.Expression, scope: set[str]) -> None:
    if isinstance(expression, ast.Variable):
        if expression.name not in scope:
            raise UnknownVariableError(
                f"variable '{expression.name}' is not defined"
            )
        return
    if isinstance(expression, ast.ListComprehension):
        _check_expression(expression.source, scope)
        inner = scope | {expression.variable}
        if expression.predicate is not None:
            _check_expression(expression.predicate, inner)
        if expression.projection is not None:
            _check_expression(expression.projection, inner)
        return
    if isinstance(expression, ast.Quantifier):
        _check_expression(expression.source, scope)
        _check_expression(expression.predicate, scope | {expression.variable})
        return
    if isinstance(expression, ast.Reduce):
        _check_expression(expression.init, scope)
        _check_expression(expression.source, scope)
        _check_expression(
            expression.expression,
            scope | {expression.accumulator, expression.variable},
        )
        return
    if isinstance(expression, (ast.PatternExpression, ast.ExistsExpression)):
        # Pattern predicates quantify their unbound variables
        # existentially; only property-map expressions inside them are
        # checked (they may reference outer scope or the pattern's own
        # existential variables).
        argument = (
            expression.pattern
            if isinstance(expression, ast.PatternExpression)
            else expression.argument
        )
        if isinstance(argument, ast.PathPattern):
            local = set(scope)
            for element in argument.elements:
                if element.variable is not None:
                    local.add(element.variable)
            for element in argument.elements:
                if element.properties is not None:
                    for __, value in element.properties.items:
                        _check_expression(value, local)
            return
        _check_expression(argument, scope)
        return
    from repro.runtime.aggregation import children

    for child in children(expression):
        _check_expression(child, scope)
