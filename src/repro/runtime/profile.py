"""Runtime query profiles: the ``PROFILE`` observability layer.

Where :mod:`repro.runtime.explain` describes how a statement *would*
execute, this module records how one *did*: a :class:`QueryProfile` is
a tree of :class:`ClauseProfile` entries, one per executed clause (the
paper's ``(G, T) -> (G', T')`` step), each carrying

* wall-clock time,
* rows in / rows out (driving-table cardinalities), and
* **db-hits** -- the storage accesses attributed to the clause, broken
  down by the taxonomy of :mod:`repro.graph.counters`.

The engine installs the profile's :class:`~repro.graph.counters.HitCounters`
on the store for the duration of one statement; the pipeline brackets
each clause with :meth:`QueryProfile.begin` / :meth:`QueryProfile.end`,
attributing the counter delta.  Nested update clauses (FOREACH bodies)
become children of their enclosing clause, whose own metrics are
*inclusive* of the children -- totals are read off the root entries.

Entry points: ``Graph.profile(query)``, ``CypherEngine.execute(...,
profile=True)`` (which attaches the profile to the ``QueryResult``),
and the shell's ``:profile`` command.
"""

from __future__ import annotations

import time
from typing import Any

from repro.graph.counters import DbHits, HitCounters
from repro.parser import ast

#: Short executor names for MERGE, matching the explain renderer.
_MERGE_NAMES = {
    ast.MERGE_LEGACY: "LegacyMerge",
    ast.MERGE_ALL: "MergeAll",
    ast.MERGE_SAME: "MergeSame",
    ast.MERGE_GROUPING: "MergeGrouping",
    ast.MERGE_WEAK_COLLAPSE: "MergeWeakCollapse",
    ast.MERGE_COLLAPSE: "MergeCollapse",
}

_MAX_DETAIL = 60


def clause_label(clause: ast.Clause, dialect) -> str:
    """Short, stable label for one clause (executor name + source)."""
    from repro.dialect import Dialect
    from repro.parser.unparse import unparse

    legacy = dialect is Dialect.CYPHER9
    if isinstance(clause, ast.MatchClause):
        name = "OptionalMatch" if clause.optional else "Match"
        detail = unparse(clause.pattern)
    elif isinstance(clause, ast.SetClause):
        name = "LegacySet" if legacy else "AtomicSet"
        detail = _strip_keyword(unparse(clause), "SET")
    elif isinstance(clause, ast.DeleteClause):
        name = "LegacyDelete" if legacy else "StrictDelete"
        detail = _strip_keyword(unparse(clause), "DELETE", "DETACH DELETE")
    elif isinstance(clause, ast.MergeClause):
        name = _MERGE_NAMES[clause.semantics]
        detail = unparse(clause.pattern)
    elif isinstance(clause, ast.CreateClause):
        name = "Create"
        detail = unparse(clause.pattern)
    elif isinstance(clause, ast.ForeachClause):
        name = "Foreach"
        detail = f"{clause.variable} IN {unparse(clause.source)}"
    else:
        name = type(clause).__name__.replace("Clause", "")
        detail = _strip_keyword(unparse(clause), name.upper())
    if len(detail) > _MAX_DETAIL:
        detail = detail[: _MAX_DETAIL - 3] + "..."
    return f"{name} {detail}".rstrip()


def _strip_keyword(text: str, *keywords: str) -> str:
    """Drop a leading clause keyword the label name already conveys."""
    for keyword in keywords:
        if text.upper().startswith(keyword + " "):
            return text[len(keyword) + 1 :]
    return text


class ClauseProfile:
    """Metrics of one executed clause (inclusive of its children)."""

    __slots__ = (
        "label",
        "rows_in",
        "rows_out",
        "time_ms",
        "hits",
        "children",
        "anchor",
        "paths_reordered",
        "workers",
        "morsels",
        "morsel_ms",
        "_started",
        "_before",
    )

    def __init__(self, label: str, rows_in: int):
        self.label = label
        self.rows_in = rows_in
        self.rows_out = 0
        self.time_ms = 0.0
        self.hits = DbHits()
        self.children: list[ClauseProfile] = []
        #: match-planner annotations (None / 0 when the clause did not
        #: plan a pattern): the chosen anchor description and how many
        #: paths ran out of written order
        self.anchor: str | None = None
        self.paths_reordered = 0
        #: morsel-executor annotations (None / 0 on serial clauses):
        #: worker count, morsel count, and per-morsel wall times
        self.workers: int | None = None
        self.morsels = 0
        self.morsel_ms: list[float] | None = None
        self._started = 0.0
        self._before = DbHits()

    @property
    def db_hits(self) -> int:
        """Total db-hits of this clause (children included)."""
        return self.hits.total

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (harness JSON, tooling)."""
        return {
            "label": self.label,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "time_ms": round(self.time_ms, 3),
            "db_hits": self.hits.to_dict(),
            "anchor": self.anchor,
            "paths_reordered": self.paths_reordered,
            "workers": self.workers,
            "morsels": self.morsels,
            "morsel_ms": (
                [round(ms, 3) for ms in self.morsel_ms]
                if self.morsel_ms is not None
                else None
            ),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"ClauseProfile({self.label!r}, rows {self.rows_in}->"
            f"{self.rows_out}, hits {self.hits.total})"
        )


class QueryProfile:
    """The per-statement profile tree built while executing."""

    def __init__(
        self, statement: str, dialect: str, planner: bool
    ):
        self.statement = statement
        self.dialect = dialect
        self.planner = planner
        self.counters = HitCounters()
        self.clauses: list[ClauseProfile] = []
        self.time_ms = 0.0
        #: expression-compiler activity during this statement
        #: (expressions_compiled, cache_hits, constant_folded);
        #: filled in by the engine from the compiler's counter deltas
        self.compiler: dict[str, int] = {}
        #: the QueryResult this profile belongs to (set by the engine)
        self.result = None
        self._stack: list[list[ClauseProfile]] = [self.clauses]
        #: open entries, innermost last (annotation target)
        self._open: list[ClauseProfile] = []

    # -- recording ------------------------------------------------------

    def begin(self, label: str, rows_in: int) -> ClauseProfile:
        """Open a clause entry; subsequent entries nest under it."""
        entry = ClauseProfile(label, rows_in)
        entry._before = self.counters.snapshot()
        entry._started = time.perf_counter()
        self._stack[-1].append(entry)
        self._stack.append(entry.children)
        self._open.append(entry)
        return entry

    def end(self, entry: ClauseProfile, rows_out: int) -> None:
        """Close a clause entry, attributing time and db-hit deltas."""
        entry.time_ms = (time.perf_counter() - entry._started) * 1000
        entry.hits = self.counters.snapshot() - entry._before
        entry.rows_out = rows_out
        self._stack.pop()
        self._open.pop()

    def annotate(self, **fields: object) -> None:
        """Attach planner metadata to the innermost open clause entry.

        Called from inside pattern matching (e.g. the match planner
        reporting its anchor choice); a no-op between clauses.
        """
        if not self._open:
            return
        entry = self._open[-1]
        for name, value in fields.items():
            setattr(entry, name, value)

    # -- totals ---------------------------------------------------------

    @property
    def hits(self) -> DbHits:
        """Whole-statement db-hit totals."""
        return self.counters.snapshot()

    @property
    def total_db_hits(self) -> int:
        """Whole-statement db-hit count."""
        return self.counters.snapshot().total

    # -- output ---------------------------------------------------------

    def render(self) -> str:
        """PROFILE-style rendering (see ``repro.runtime.explain``)."""
        from repro.runtime.explain import render_profile

        return render_profile(self)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: statement, totals, per-clause tree."""
        return {
            "statement": self.statement,
            "dialect": self.dialect,
            "planner": self.planner,
            "time_ms": round(self.time_ms, 3),
            "db_hits": self.hits.to_dict(),
            "compiler": dict(self.compiler),
            "clauses": [clause.to_dict() for clause in self.clauses],
        }

    def __repr__(self) -> str:
        return (
            f"QueryProfile({self.statement!r}, "
            f"{len(self.clauses)} clauses, {self.total_db_hits} db hits)"
        )
