"""Selectivity-driven MATCH planning: start points and path order.

The naive matcher (:mod:`repro.runtime.matcher`) anchors every path
pattern at its syntactically first node and runs the paths of one MATCH
in written order.  This module plans both choices from store statistics
before enumeration starts:

* **anchor selection** -- each path starts at the node pattern with the
  smallest estimated candidate count (bound variable < property-index
  hit < label scan < full scan, per :func:`estimate_element`), and the
  matcher expands from that anchor in *both* directions;

* **path ordering** -- paths whose anchors are cheapest run first, so
  later paths see more bound variables (a greedy join order).

Statistics come from :class:`~repro.graph.store.GraphStore` counters
that every mutation and every journal undo maintain (`node_count`,
`label_count`, `index_selectivity`, degrees), so planning itself costs
O(pattern size) and no db-hits.

Correctness:

* The set of matches is enumeration-order independent in both trail
  and homomorphism mode (the trail constraint -- all relationship
  occurrences distinct -- is a property of the complete assignment),
  so planning never changes revised-dialect results.
* The *legacy* dialect can observe enumeration order through the
  anomalies the paper documents, and the matcher promises ascending-id
  order.  When ``EvalContext.preserve_match_order`` is set the planner
  therefore re-sorts each record's matches back into naive order using
  per-path sort keys (anchor node id, then relationship ids step by
  step; variable-length segments compare as id tuples, which matches
  the prefix-first expansion order).  Patterns whose keys would be
  ambiguous (two or more variable-length steps in one path) fall back
  to the naive matcher.
* Property maps may reference variables bound earlier in the same
  pattern (the scoping rules validate written order).  Such patterns
  keep their written path order, and a path whose property maps read
  its *own* earlier variables keeps anchor 0, so every property
  expression still sees the bindings it was validated against.

:func:`planner_disabled` is the escape hatch mirroring
``compiler.compilation_disabled()``: inside the context manager the
naive matcher is the executable reference, which is how the benchmark
harness measures the unplanned baseline.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from functools import lru_cache
from typing import Any, Iterator, Mapping

from repro.graph.model import Path
from repro.parser import ast
from repro.runtime import matcher
from repro.runtime.context import EvalContext
from repro.runtime.planner import _UNKNOWN, _try_evaluate, _variables_of

_ENABLED = True


@contextmanager
def planner_disabled() -> Iterator[None]:
    """Temporarily route all matching through the naive matcher.

    Used by the benchmark harness (unplanned baseline) and the
    equivalence tests; nesting is allowed.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def planning_active() -> bool:
    """True unless inside :func:`planner_disabled`."""
    return _ENABLED


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PathPlan:
    """One path's planned execution: where to start, what it costs."""

    path: ast.PathPattern
    #: position of this path in the written pattern
    written_index: int
    #: node-element index of the anchor (``path.nodes[anchor_index]``)
    anchor_index: int
    #: estimated candidate count of the anchor
    cost: float
    #: human-readable access path ("index :L(key)", "label scan :L", ...)
    access: str

    def describe(self) -> str:
        """``"p via index :Product(id)"``-style anchor description."""
        element = self.path.nodes[self.anchor_index]
        name = element.variable or f"#{self.anchor_index}"
        return f"{name} via {self.access}"


@dataclasses.dataclass(frozen=True)
class PatternPlan:
    """The planned execution of one MATCH pattern (all its paths)."""

    ordered: tuple[PathPlan, ...]

    @property
    def trivial(self) -> bool:
        """True when the plan is exactly the naive strategy."""
        return all(
            plan.written_index == position and plan.anchor_index == 0
            for position, plan in enumerate(self.ordered)
        )

    def moved_count(self) -> int:
        """How many paths run at a different position than written."""
        return sum(
            1
            for position, plan in enumerate(self.ordered)
            if plan.written_index != position
        )

    def anchor_summary(self) -> str:
        """One-line anchor description, paths in planned order."""
        return ", ".join(plan.describe() for plan in self.ordered)


# ---------------------------------------------------------------------------
# Estimation
# ---------------------------------------------------------------------------

def estimate_element(
    ctx: EvalContext,
    element: ast.NodePattern,
    bound: set[str],
    record: Mapping[str, Any],
) -> tuple[float, str]:
    """Estimated candidate count and access path for one node pattern.

    Reads only maintained statistics (never the index buckets through
    their counted accessors), so estimation costs no db-hits.
    """
    if element.variable is not None and element.variable in bound:
        return 0.0, f"bound({element.variable})"
    store = ctx.store
    best = float(store.node_count())
    access = "all nodes"
    for label in element.labels:
        count = float(store.label_count(label))
        if count < best:
            best = count
            access = f"label scan :{label}"
    indexed = False
    if element.properties is not None:
        for label in element.labels:
            for key, expr in element.properties.items:
                index = store.property_index(label, key)
                if index is None:
                    continue
                value = _try_evaluate(ctx, expr, record, bound)
                if value is _UNKNOWN:
                    # Index exists but the value depends on unbound
                    # variables; assume an average bucket.
                    estimate = max(1.0, index.average_bucket_size())
                else:
                    estimate = float(index.bucket_size(value))
                if estimate <= best:
                    best = estimate
                    access = f"index :{label}({key})"
                    indexed = True
    if (
        not indexed
        and element.properties is not None
        and element.properties.items
    ):
        # An un-indexed property map still filters; discount mildly so
        # a property-carrying end beats a bare one with the same label.
        best *= 0.9
    return best, access


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

def plan_paths(
    ctx: EvalContext,
    paths: tuple[ast.PathPattern, ...],
    record: Mapping[str, Any],
) -> PatternPlan:
    """Choose an anchor per path and an execution order for *paths*."""
    bound = {name for name, value in record.items() if value is not None}
    provided = set()
    for path in paths:
        provided |= _path_provides(path)
    refs = [
        _property_refs(path) & provided - set(record) for path in paths
    ]
    keep_written_order = any(refs)
    plans: list[PathPlan] = []
    remaining = list(range(len(paths)))
    while remaining:
        candidates: list[PathPlan] = []
        for index in remaining:
            path = paths[index]
            own_refs = bool(refs[index] & _path_provides(path))
            anchor, cost, access = _choose_anchor(
                ctx, path, bound, record, pin_anchor=own_refs
            )
            candidates.append(PathPlan(path, index, anchor, cost, access))
            if keep_written_order:
                break  # written order: only the earliest unplanned path
        best = min(candidates, key=lambda plan: plan.cost)
        plans.append(best)
        remaining.remove(best.written_index)
        # Later paths benefit from the variables this one binds.
        bound |= _path_provides(best.path)
    return PatternPlan(tuple(plans))


def _choose_anchor(
    ctx: EvalContext,
    path: ast.PathPattern,
    bound: set[str],
    record: Mapping[str, Any],
    *,
    pin_anchor: bool,
) -> tuple[int, float, str]:
    """Cheapest anchor position for *path* (ties keep the leftmost).

    Anchors other than the first node are ruled out for paths with
    variable-length steps (their list bindings and sort keys are
    defined by left-to-right expansion) and for paths whose property
    maps read the path's own earlier variables (*pin_anchor*).
    """
    nodes = path.nodes
    best_index = 0
    best_cost, best_access = estimate_element(ctx, nodes[0], bound, record)
    movable = not pin_anchor and not any(
        rel.is_var_length for rel in path.relationships
    )
    if movable:
        for index in range(1, len(nodes)):
            cost, access = estimate_element(
                ctx, nodes[index], bound, record
            )
            if cost < best_cost:
                best_index, best_cost, best_access = index, cost, access
    return best_index, best_cost, best_access


def _path_provides(path: ast.PathPattern) -> set[str]:
    """Variables *path* binds: its elements' plus the path variable."""
    names = {
        element.variable
        for element in path.elements
        if element.variable is not None
    }
    if path.variable is not None:
        names.add(path.variable)
    return names


@lru_cache(maxsize=1024)
def _property_refs(path: ast.PathPattern) -> frozenset[str]:
    """Variables referenced by *path*'s property-map expressions."""
    names: set[str] = set()
    for element in path.elements:
        if element.properties is None:
            continue
        for __, expr in element.properties.items:
            names |= _variables_of(expr)
    return frozenset(names)


# ---------------------------------------------------------------------------
# Planned enumeration
# ---------------------------------------------------------------------------

def match_paths_planned(
    ctx: EvalContext,
    paths: tuple[ast.PathPattern, ...],
    record: Mapping[str, Any],
) -> Iterator[dict]:
    """Planned counterpart of :func:`repro.runtime.matcher.match_paths`.

    Yields exactly the matches the naive matcher would: the same
    multiset always, and -- when ``ctx.preserve_match_order`` is set --
    in the same (ascending-id) order, by buffering one record's matches
    and re-sorting them on their naive enumeration keys.
    """
    plan = plan_paths(ctx, paths, record)
    if ctx.profile is not None:
        ctx.profile.annotate(
            anchor=plan.anchor_summary(),
            paths_reordered=plan.moved_count(),
        )
    naive = plan.trivial
    collect_keys = False
    if ctx.preserve_match_order and not naive:
        specs = [_path_sort_spec(path) for path in paths]
        if any(spec is None for spec in specs):
            # A path with two or more variable-length steps has no
            # reconstructible enumeration key; reproduce the order by
            # construction instead.
            naive = True
        else:
            collect_keys = True
    if naive:
        yield from matcher._match_path_list(
            ctx, paths, 0, dict(record), set()
        )
        return
    if not collect_keys:
        for bindings, __ in _run_plan(ctx, plan, record, False):
            yield bindings
        return
    buffered = [
        (keys, bindings)
        for bindings, keys in _run_plan(ctx, plan, record, True)
    ]
    buffered.sort(key=lambda pair: pair[0])
    for __, bindings in buffered:
        yield bindings


def _run_plan(
    ctx: EvalContext,
    plan: PatternPlan,
    record: Mapping[str, Any],
    collect_keys: bool,
) -> Iterator[tuple[dict, tuple]]:
    """Enumerate matches path by path in planned order.

    Yields ``(bindings, keys)`` where *keys* orders the per-path sort
    keys by *written* position (the naive nesting order), so sorting on
    them reproduces naive enumeration.
    """
    ordered = plan.ordered
    bindings = dict(record)
    used: set[int] = set()
    keys: list[Any] = [None] * len(ordered)

    def run(position: int) -> Iterator[tuple[dict, tuple]]:
        if position == len(ordered):
            yield dict(bindings), tuple(keys)
            return
        path_plan = ordered[position]
        path = path_plan.path
        for nodes, rels in _match_anchored(
            ctx, path, path_plan.anchor_index, bindings, used
        ):
            added_path = False
            if path.variable is not None and path.variable not in bindings:
                bindings[path.variable] = Path(nodes, rels)
                added_path = True
            if collect_keys:
                keys[path_plan.written_index] = _written_key(
                    _path_sort_spec(path), nodes, rels
                )
            try:
                yield from run(position + 1)
            finally:
                if added_path:
                    del bindings[path.variable]

    yield from run(0)


def _match_anchored(
    ctx: EvalContext,
    path: ast.PathPattern,
    anchor_index: int,
    bindings: dict,
    used: set[int],
) -> Iterator[tuple[list, list]]:
    """Match one path starting at node element *anchor_index*.

    Expansion runs leftwards from the anchor first (over the mirrored
    prefix, relationship directions flipped), then rightwards; nesting
    the two generators keeps the left segment's bindings and trail
    entries live while the right segment enumerates, exactly like the
    matcher's own recursion.  Yields ``(nodes, rels)`` reassembled in
    written orientation, so path-variable bindings are unaffected by
    where the walk started.
    """
    if anchor_index == 0:
        yield from matcher._match_single_path(ctx, path, bindings, used)
        return
    elements = path.elements
    split = 2 * anchor_index
    anchor = elements[split]
    leftward = _mirror_elements(elements[: split + 1])
    rightward = elements[split:]
    for node in matcher._node_candidates(ctx, anchor, bindings):
        added = matcher._bind(bindings, anchor.variable, node)
        try:
            for left_nodes, left_rels in matcher._extend(
                ctx, leftward, 1, node, [node], [], bindings, used
            ):
                for right_nodes, right_rels in matcher._extend(
                    ctx, rightward, 1, node, [node], [], bindings, used
                ):
                    yield (
                        left_nodes[::-1] + right_nodes[1:],
                        left_rels[::-1] + right_rels,
                    )
        finally:
            matcher._unbind(bindings, anchor.variable, added)


@lru_cache(maxsize=1024)
def _mirror_elements(prefix: tuple) -> tuple:
    """*prefix* reversed with relationship directions flipped.

    The mirrored element list starts at the anchor and walks back to
    the path's written start; cached because the same pattern is
    planned once per driving record.
    """
    mirrored = []
    for element in reversed(prefix):
        if isinstance(element, ast.RelationshipPattern):
            if element.direction == ast.OUT:
                element = dataclasses.replace(element, direction=ast.IN)
            elif element.direction == ast.IN:
                element = dataclasses.replace(element, direction=ast.OUT)
        mirrored.append(element)
    return tuple(mirrored)


# ---------------------------------------------------------------------------
# Legacy-order sort keys
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1024)
def _path_sort_spec(path: ast.PathPattern) -> tuple | None:
    """Step shape of *path* for key reconstruction, or None.

    A match's naive enumeration key is the anchor node id followed by
    one entry per relationship step: the relationship id for a fixed
    step, the id tuple for a variable-length segment.  With at most one
    variable-length step its segment length can be recovered from the
    match (total rels minus fixed steps); with two or more the split is
    ambiguous and the key is not reconstructible.
    """
    steps = tuple(
        "var" if rel.is_var_length else "fixed"
        for rel in path.relationships
    )
    if steps.count("var") >= 2:
        return None
    return steps


def _written_key(spec: tuple, nodes: list, rels: list) -> tuple:
    """The naive enumeration key of one matched path (see spec above).

    Tuple comparison on variable-length segments matches the matcher's
    prefix-first expansion: ``()`` < ``(5,)`` < ``(5, 3)`` < ``(9,)``.
    """
    key: list[Any] = [nodes[0].id]
    segment_length = len(rels) - spec.count("fixed")
    position = 0
    for step in spec:
        if step == "fixed":
            key.append(rels[position].id)
            position += 1
        else:
            key.append(
                tuple(rel.id for rel in rels[position:position + segment_length])
            )
            position += segment_length
    return tuple(key)
