"""Graph pattern matching.

Implements the relation ``(p, G, u) |= pi`` of Section 8.1: given a
graph and an assignment *u* (the current record), enumerate all ways to
match a tuple of path patterns, extending *u* with bindings for the
pattern's variables.

Two regimes are supported (see Section 2 and the Example 7 discussion):

* **trail** (Cypher's default): distinct relationship patterns must map
  to distinct relationships.  The ``used`` set is shared across *all*
  path patterns of one MATCH, including the steps of variable-length
  patterns, which is what keeps ``MATCH (v)-[*]->(v)`` finite.

* **homomorphism**: relationships may be reused; variable-length
  patterns are capped by ``EvalContext.homomorphism_hop_limit`` when no
  upper bound is given (otherwise the output could be infinite).

Enumeration order is deterministic (ascending entity ids) so that the
*legacy* executor's anomalies are reproducible on demand; the revised
semantics never depends on this order.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import CypherTypeError
from repro.graph.model import Node, Path, Relationship
from repro.graph.values import cypher_eq, type_name
from repro.parser import ast
from repro.runtime.compiler import compile_map_items
from repro.runtime.context import EvalContext, MatchMode


def match_pattern(
    ctx: EvalContext, pattern: ast.Pattern, record: Mapping[str, Any]
) -> Iterator[dict]:
    """All extensions of *record* matching every path in *pattern*."""
    return match_paths(ctx, pattern.paths, record)


def match_paths(
    ctx: EvalContext,
    paths: Iterable[ast.PathPattern],
    record: Mapping[str, Any],
) -> Iterator[dict]:
    """All extensions of *record* matching the given path patterns."""
    paths = tuple(paths)
    if ctx.use_planner:
        # Planning hooks in here (not in the MATCH executor) so MERGE's
        # read half, OPTIONAL MATCH and pattern predicates all benefit.
        from repro.runtime.match_planner import (
            match_paths_planned,
            planning_active,
        )

        if planning_active():
            yield from match_paths_planned(ctx, paths, record)
            return
    bindings = dict(record)
    used: set[int] = set()
    yield from _match_path_list(ctx, paths, 0, bindings, used)


def pattern_variables(pattern: ast.Pattern) -> tuple[str, ...]:
    """All variables a pattern introduces or constrains, in order."""
    names: list[str] = []
    for path in pattern.paths:
        if path.variable is not None:
            names.append(path.variable)
        for element in path.elements:
            if element.variable is not None:
                names.append(element.variable)
    seen: set[str] = set()
    unique = []
    for name in names:
        if name not in seen:
            seen.add(name)
            unique.append(name)
    return tuple(unique)


# ---------------------------------------------------------------------------

def _match_path_list(
    ctx: EvalContext,
    paths: tuple[ast.PathPattern, ...],
    index: int,
    bindings: dict,
    used: set[int],
) -> Iterator[dict]:
    if index == len(paths):
        yield dict(bindings)
        return
    path = paths[index]
    for nodes, rels in _match_single_path(ctx, path, bindings, used):
        added_path = False
        if path.variable is not None and path.variable not in bindings:
            bindings[path.variable] = Path(nodes, rels)
            added_path = True
        try:
            yield from _match_path_list(ctx, paths, index + 1, bindings, used)
        finally:
            if added_path:
                del bindings[path.variable]


def _match_single_path(
    ctx: EvalContext,
    path: ast.PathPattern,
    bindings: dict,
    used: set[int],
) -> Iterator[tuple[list[Node], list[Relationship]]]:
    elements = path.elements
    first = elements[0]
    for node in _node_candidates(ctx, first, bindings):
        added = _bind(bindings, first.variable, node)
        try:
            yield from _extend(
                ctx, elements, 1, node, [node], [], bindings, used
            )
        finally:
            _unbind(bindings, first.variable, added)


def _extend(
    ctx: EvalContext,
    elements: tuple,
    index: int,
    current: Node,
    nodes_acc: list[Node],
    rels_acc: list[Relationship],
    bindings: dict,
    used: set[int],
) -> Iterator[tuple[list[Node], list[Relationship]]]:
    if index >= len(elements):
        yield list(nodes_acc), list(rels_acc)
        return
    rel_pattern = elements[index]
    node_pattern = elements[index + 1]
    if rel_pattern.is_var_length:
        yield from _extend_var_length(
            ctx,
            elements,
            index,
            current,
            nodes_acc,
            rels_acc,
            bindings,
            used,
        )
        return
    # The bindings visible to the pattern's property expressions are
    # fixed for the duration of this step (this element's own variables
    # are bound only after the property check), so each property map is
    # evaluated once here and reused for every candidate.
    rel_props = _evaluate_properties(ctx, rel_pattern.properties, bindings)
    node_props = _evaluate_properties(ctx, node_pattern.properties, bindings)
    for rel, next_node in _rel_candidates(
        ctx, rel_pattern, current, bindings, used, rel_props
    ):
        if not _node_matches(ctx, node_pattern, next_node, bindings, node_props):
            continue
        rel_added = _bind(bindings, rel_pattern.variable, rel)
        node_added = _bind(bindings, node_pattern.variable, next_node)
        track_used = ctx.match_mode is MatchMode.TRAIL
        if track_used:
            used.add(rel.id)
        nodes_acc.append(next_node)
        rels_acc.append(rel)
        try:
            yield from _extend(
                ctx,
                elements,
                index + 2,
                next_node,
                nodes_acc,
                rels_acc,
                bindings,
                used,
            )
        finally:
            nodes_acc.pop()
            rels_acc.pop()
            if track_used:
                used.discard(rel.id)
            _unbind(bindings, node_pattern.variable, node_added)
            _unbind(bindings, rel_pattern.variable, rel_added)


def _extend_var_length(
    ctx: EvalContext,
    elements: tuple,
    index: int,
    current: Node,
    nodes_acc: list[Node],
    rels_acc: list[Relationship],
    bindings: dict,
    used: set[int],
) -> Iterator[tuple[list[Node], list[Relationship]]]:
    rel_pattern = elements[index]
    node_pattern = elements[index + 1]
    lower, upper = rel_pattern.var_length
    lower = 1 if lower is None else lower
    if upper is None:
        if ctx.match_mode is MatchMode.HOMOMORPHISM:
            upper = ctx.homomorphism_hop_limit
        else:
            # Trails cannot repeat relationships, so the graph size
            # bounds the expansion.
            upper = ctx.store.relationship_count()
    track_used = ctx.match_mode is MatchMode.TRAIL
    # Bindings at every _node_matches/_rel_candidates call inside the
    # expansion equal the bindings at entry (deeper binds are scoped to
    # the recursive branch and undone before the loop resumes), so the
    # property maps are evaluated once for the whole expansion.
    rel_props = _evaluate_properties(ctx, rel_pattern.properties, bindings)
    node_props = _evaluate_properties(ctx, node_pattern.properties, bindings)

    def expand(
        node: Node,
        depth: int,
        segment: list[Relationship],
        segment_nodes: list[Node],
    ) -> Iterator[tuple[list[Node], list[Relationship]]]:
        if depth >= lower and _node_matches(
            ctx, node_pattern, node, bindings, node_props
        ):
            list_added = _bind_list(bindings, rel_pattern.variable, segment)
            node_added = _bind(bindings, node_pattern.variable, node)
            try:
                # A zero-length segment contributes no new path nodes
                # (the endpoint *is* `current`); a k-step segment
                # contributes its k visited nodes.
                yield from _extend(
                    ctx,
                    elements,
                    index + 2,
                    node,
                    nodes_acc + segment_nodes,
                    rels_acc + segment,
                    bindings,
                    used,
                )
            finally:
                _unbind(bindings, node_pattern.variable, node_added)
                _unbind(bindings, rel_pattern.variable, list_added)
        if depth >= upper:
            return
        for rel, next_node in _rel_candidates(
            ctx,
            rel_pattern,
            node,
            bindings,
            used,
            rel_props,
            ignore_bound_variable=True,
        ):
            if track_used:
                used.add(rel.id)
            segment.append(rel)
            segment_nodes.append(next_node)
            try:
                yield from expand(next_node, depth + 1, segment, segment_nodes)
            finally:
                segment_nodes.pop()
                segment.pop()
                if track_used:
                    used.discard(rel.id)

    yield from expand(current, 0, [], [])


# ---------------------------------------------------------------------------
# Candidate enumeration
# ---------------------------------------------------------------------------

def _evaluate_properties(
    ctx: EvalContext,
    properties: ast.MapLiteral | None,
    bindings: Mapping[str, Any],
) -> tuple[tuple[str, Any], ...] | None:
    """Evaluate a pattern's property map once against *bindings*.

    The returned ``(key, value)`` pairs are reused for every candidate
    the pattern is checked against, so each property expression costs
    one evaluation (and its db-hits) per pattern per record instead of
    one per candidate.
    """
    if properties is None:
        return None
    return tuple(
        (key, fn(ctx, bindings))
        for key, fn in compile_map_items(properties)
    )


def _node_candidates(
    ctx: EvalContext, pattern: ast.NodePattern, bindings: dict
) -> Iterator[Node]:
    variable = pattern.variable
    if variable is not None and variable in bindings:
        value = bindings[variable]
        if value is None:
            return
        if not isinstance(value, Node):
            raise CypherTypeError(
                f"variable '{variable}' is bound to {type_name(value)}, "
                f"expected a Node"
            )
        props = _evaluate_properties(ctx, pattern.properties, bindings)
        if _node_matches(ctx, pattern, value, bindings, props):
            yield value
        return
    props = _evaluate_properties(ctx, pattern.properties, bindings)
    store = ctx.store
    candidate_ids = None
    # Narrow by label index.
    for label in pattern.labels:
        with_label = store.nodes_with_label(label)
        candidate_ids = (
            with_label
            if candidate_ids is None
            else candidate_ids & with_label
        )
    # Narrow further by a property index when available, reusing the
    # values already evaluated for the per-candidate check below.
    if props is not None:
        for label in pattern.labels:
            for key, value in props:
                index = store.property_index(label, key)
                if index is None:
                    continue
                matches = index.lookup(value)
                candidate_ids = (
                    matches
                    if candidate_ids is None
                    else candidate_ids & matches
                )
    if candidate_ids is None:
        candidates: Iterable[Node] = store.nodes()
    else:
        candidates = (store.node(nid) for nid in sorted(candidate_ids))
    for node in candidates:
        if _node_matches(ctx, pattern, node, bindings, props):
            yield node


def _node_matches(
    ctx: EvalContext,
    pattern: ast.NodePattern,
    node: Node,
    bindings: dict,
    props: tuple[tuple[str, Any], ...] | None,
) -> bool:
    variable = pattern.variable
    if variable is not None and variable in bindings:
        bound = bindings[variable]
        if not isinstance(bound, Node) or bound.id != node.id:
            return False
    if pattern.labels:
        # One label-set fetch for the whole pattern (one db-hit, not
        # one per label in the pattern).
        labels = node.labels
        for label in pattern.labels:
            if label not in labels:
                return False
    if props is not None:
        for key, value in props:
            if cypher_eq(node.get(key), value) is not True:
                return False
    return True


def _rel_candidates(
    ctx: EvalContext,
    pattern: ast.RelationshipPattern,
    current: Node,
    bindings: dict,
    used: set[int],
    props: tuple[tuple[str, Any], ...] | None,
    *,
    ignore_bound_variable: bool = False,
) -> Iterator[tuple[Relationship, Node]]:
    store = ctx.store
    variable = pattern.variable
    if (
        not ignore_bound_variable
        and variable is not None
        and variable in bindings
    ):
        value = bindings[variable]
        if value is None:
            return
        if not isinstance(value, Relationship):
            raise CypherTypeError(
                f"variable '{variable}' is bound to {type_name(value)}, "
                f"expected a Relationship"
            )
        candidate_ids: Iterable[int] = (value.id,)
        type_checked = False
    else:
        # Typed patterns use the per-type adjacency index and skip
        # relationships of other types without touching them; the store
        # builds one ordered id list per step instead of materialising
        # and unioning per-direction sets.
        candidate_ids = store.adjacent_rel_ids(
            current.id,
            outgoing=pattern.direction != ast.IN,
            incoming=pattern.direction != ast.OUT,
            types=pattern.types or None,
        )
        type_checked = True
    for rel_id in candidate_ids:
        if ctx.match_mode is MatchMode.TRAIL and rel_id in used:
            continue
        rel = store.relationship(rel_id)
        # A bound variable's relationship was never type-filtered;
        # adjacency-derived candidates already were.
        if not type_checked and pattern.types and rel.type not in pattern.types:
            continue
        source_id = rel.start.id
        target_id = rel.end.id
        # Orient the step: the relationship must actually attach to
        # `current` in a way compatible with the pattern's direction.
        if pattern.direction == ast.OUT:
            if source_id != current.id:
                continue
            next_node = rel.end
        elif pattern.direction == ast.IN:
            if target_id != current.id:
                continue
            next_node = rel.start
        else:
            if source_id == current.id:
                next_node = rel.end
            elif target_id == current.id:
                next_node = rel.start
            else:
                continue
        if props is not None:
            matched = True
            for key, value in props:
                if cypher_eq(rel.get(key), value) is not True:
                    matched = False
                    break
            if not matched:
                continue
        yield rel, next_node
        # An undirected pattern on a self-loop matches only once.


# ---------------------------------------------------------------------------
# Binding helpers
# ---------------------------------------------------------------------------

def _bind(bindings: dict, variable: str | None, value: Any) -> bool:
    """Bind variable -> value; returns True if a new binding was added."""
    if variable is None:
        return False
    if variable in bindings:
        return False  # pre-checked for equality by the caller
    bindings[variable] = value
    return True


def _bind_list(
    bindings: dict, variable: str | None, rels: list[Relationship]
) -> bool:
    """Bind a var-length relationship variable to the relationship list."""
    if variable is None:
        return False
    if variable in bindings:
        return False
    bindings[variable] = list(rels)
    return True


def _unbind(bindings: dict, variable: str | None, added: bool) -> None:
    if added and variable is not None:
        del bindings[variable]
