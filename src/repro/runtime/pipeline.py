"""The clause pipeline: ``[[C1 C2 ...]](G, T)`` by composition.

Section 8.1: the semantics of a clause sequence is the left-to-right
composition of the clause semantics, each mapping a (graph, table) pair
to a (graph, table) pair.  The graph lives in the mutable store inside
the :class:`~repro.runtime.context.EvalContext`; this module threads
the table and dispatches each clause to its dialect's implementation.
"""

from __future__ import annotations

from repro.dialect import Dialect
from repro.errors import CypherSemanticError
from repro.parser import ast
from repro.runtime.context import EvalContext
from repro.runtime.projection import project_return, project_with
from repro.runtime.reading import (
    execute_load_csv,
    execute_match,
    execute_unwind,
)
from repro.runtime.table import DrivingTable


def execute_clauses(
    ctx: EvalContext,
    clauses: tuple[ast.Clause, ...],
    table: DrivingTable,
    dialect: Dialect,
) -> DrivingTable:
    """Run a clause sequence over the driving table."""
    if ctx.workers > 1:
        from repro.runtime.parallel import execute_clauses_morsel

        return execute_clauses_morsel(ctx, clauses, table, dialect)
    for clause in clauses:
        table = execute_clause(ctx, clause, table, dialect)
    return table


def is_record_local(clause: ast.Clause) -> bool:
    """True iff the clause maps each input record independently.

    Record-local clauses produce, for each input record, zero or more
    output records derived from that record alone (and the graph, which
    they do not mutate), emitted in input order.  Running such a clause
    over a partition of the table and concatenating the partition
    outputs in order therefore reproduces the serial output exactly --
    the property the morsel scheduler relies on, for *both* dialects
    (the legacy dialect's order anomalies only arise in update clauses,
    which are never record-local).

    Qualifiers: MATCH / OPTIONAL MATCH (with WHERE), UNWIND, and
    WITH / RETURN projections without aggregates, DISTINCT, ORDER BY,
    SKIP or LIMIT -- those four need the whole table at once.
    LOAD CSV is deliberately excluded: it reads a file per record, and
    duplicating file handles across workers buys nothing.
    """
    if isinstance(clause, ast.MatchClause):
        return True
    if isinstance(clause, ast.UnwindClause):
        return True
    if isinstance(clause, (ast.WithClause, ast.ReturnClause)):
        from repro.runtime.aggregation import contains_aggregate

        body = clause.body
        if body.distinct or body.order_by:
            return False
        if body.skip is not None or body.limit is not None:
            return False
        return not any(
            contains_aggregate(item.expression) for item in body.items
        )
    return False


def analyze_segments(
    clauses: tuple[ast.Clause, ...],
) -> list[tuple[str, tuple[ast.Clause, ...]]]:
    """Split a clause sequence into maximal runs by execution mode.

    Returns ``[(kind, run), ...]`` in order, where *kind* is
    ``"parallel"`` (every clause in the run is record-local, so the run
    may be morsel-parallelised) or ``"serial"`` (update clauses,
    aggregations and other whole-table barriers).  Concatenating the
    runs restores the input sequence.
    """
    segments: list[tuple[str, tuple[ast.Clause, ...]]] = []
    run: list[ast.Clause] = []
    run_kind: str | None = None
    for clause in clauses:
        kind = "parallel" if is_record_local(clause) else "serial"
        if kind != run_kind and run:
            segments.append((run_kind, tuple(run)))
            run = []
        run_kind = kind
        run.append(clause)
    if run:
        segments.append((run_kind, tuple(run)))
    return segments


def execute_clause(
    ctx: EvalContext,
    clause: ast.Clause,
    table: DrivingTable,
    dialect: Dialect,
) -> DrivingTable:
    """Run one clause: ``[[C]](G, T)`` with G inside *ctx*.

    In PROFILE mode (``ctx.profile`` set) the clause is bracketed with
    begin/end so its wall time, row counts and db-hit delta land in the
    profile tree; nested clauses (FOREACH bodies) become children.
    """
    profile = ctx.profile
    if profile is None:
        return _dispatch_clause(ctx, clause, table, dialect)
    from repro.runtime.profile import clause_label

    entry = profile.begin(clause_label(clause, dialect), len(table))
    result = None
    try:
        result = _dispatch_clause(ctx, clause, table, dialect)
    finally:
        profile.end(entry, len(result) if result is not None else 0)
    return result


def _dispatch_clause(
    ctx: EvalContext,
    clause: ast.Clause,
    table: DrivingTable,
    dialect: Dialect,
) -> DrivingTable:
    if isinstance(clause, ast.MatchClause):
        return execute_match(ctx, clause, table)
    if isinstance(clause, ast.UnwindClause):
        return execute_unwind(ctx, clause, table)
    if isinstance(clause, ast.LoadCsvClause):
        return execute_load_csv(ctx, clause, table)
    if isinstance(clause, ast.WithClause):
        return project_with(ctx, clause.body, clause.where, table)
    if isinstance(clause, ast.ReturnClause):
        return project_return(ctx, clause.body, table)
    if isinstance(clause, ast.CreateClause):
        from repro.core.create import execute_create

        return execute_create(ctx, clause, table)
    if isinstance(clause, ast.RemoveClause):
        from repro.core.remove import execute_remove

        return execute_remove(
            ctx, clause, table, ignore_deleted=dialect is Dialect.CYPHER9
        )
    if isinstance(clause, ast.SetClause):
        if dialect is Dialect.CYPHER9:
            from repro.legacy.updates import execute_set_legacy

            return execute_set_legacy(ctx, clause, table)
        from repro.core.set import execute_set

        return execute_set(ctx, clause, table)
    if isinstance(clause, ast.DeleteClause):
        if dialect is Dialect.CYPHER9:
            from repro.legacy.updates import execute_delete_legacy

            return execute_delete_legacy(ctx, clause, table)
        from repro.core.delete import execute_delete

        return execute_delete(ctx, clause, table)
    if isinstance(clause, ast.MergeClause):
        if clause.semantics == ast.MERGE_LEGACY:
            if dialect is not Dialect.CYPHER9:
                raise CypherSemanticError(
                    "bare MERGE requires the Cypher 9 dialect"
                )
            from repro.legacy.updates import execute_merge_legacy

            return execute_merge_legacy(ctx, clause, table)
        from repro.core.merge import execute_merge

        return execute_merge(ctx, clause, table)
    if isinstance(clause, ast.ForeachClause):
        return _execute_foreach(ctx, clause, table, dialect)
    raise CypherSemanticError(
        f"cannot execute clause {type(clause).__name__}"
    )


def _execute_foreach(
    ctx: EvalContext,
    clause: ast.ForeachClause,
    table: DrivingTable,
    dialect: Dialect,
) -> DrivingTable:
    """FOREACH (x IN list | updates).

    The driving table is expanded with one record per (record, element)
    pair and the inner update clauses run over the expansion under the
    active dialect -- so in the revised dialect a SET inside FOREACH is
    atomic over all iterations, while the legacy dialect stays
    per-record.  FOREACH passes its own input table through unchanged.
    """
    from repro.runtime.compiler import compile_expression  # cycle guard

    if clause.variable in table.columns:
        raise CypherSemanticError(
            f"variable '{clause.variable}' is already bound"
        )
    source_fn = compile_expression(clause.source)
    expanded = DrivingTable(tuple(table.columns) + (clause.variable,))
    for record in table:
        value = source_fn(ctx, record)
        if value is None:
            continue
        if not isinstance(value, list):
            raise CypherSemanticError("FOREACH expects a list expression")
        for element in value:
            extended = dict(record)
            extended[clause.variable] = element
            expanded.add(extended)
    inner = expanded
    for update in clause.updates:
        inner = execute_clause(ctx, update, inner, dialect)
    return table
