"""EXPLAIN-style plan descriptions and the PROFILE renderer.

:func:`explain_statement` renders how the engine will execute a parsed
statement: the clause pipeline, which dialect executor handles each
update clause, and -- when the planner is enabled -- how each MATCH
pattern was oriented and which access path anchors it.

:func:`render_profile` is its runtime counterpart: it renders a
:class:`~repro.runtime.profile.QueryProfile` recorded while actually
executing, with per-clause rows, wall time and db-hits.
"""

from __future__ import annotations

from repro.dialect import Dialect
from repro.parser import ast
from repro.parser.unparse import unparse
from repro.runtime.context import EvalContext
from repro.runtime.planner import estimate_node_cost

_MERGE_EXECUTORS = {
    ast.MERGE_LEGACY: "LegacyMerge(per-record match-or-create, reads own writes)",
    ast.MERGE_ALL: "MergeAll(atomic; match input graph, create per failing row)",
    ast.MERGE_SAME: "MergeSame(atomic; Strong Collapse cache)",
    ast.MERGE_GROUPING: "MergeGrouping(atomic; one instance per value group)",
    ast.MERGE_WEAK_COLLAPSE: "MergeWeakCollapse(atomic; per-position cache)",
    ast.MERGE_COLLAPSE: "MergeCollapse(atomic; cross-position node cache)",
}


def explain_statement(
    ctx: EvalContext, statement: ast.Statement, dialect: Dialect
) -> str:
    """A multi-line, human-readable execution plan."""
    lines = [f"dialect: {dialect.value}; planner: {'on' if ctx.use_planner else 'off'}"]
    branches = statement.branches()
    for index, branch in enumerate(branches):
        if len(branches) > 1:
            lines.append(f"union branch {index + 1}:")
        for clause in branch.clauses:
            lines.extend(_explain_clause(ctx, clause, dialect))
    return "\n".join(lines)


def _explain_clause(
    ctx: EvalContext, clause: ast.Clause, dialect: Dialect
) -> list[str]:
    prefix = "  "
    if isinstance(clause, ast.MatchClause):
        keyword = "OptionalMatch" if clause.optional else "Match"
        lines = [f"{prefix}{keyword}"]
        if ctx.use_planner:
            # Paths are listed in planned execution order, each with
            # the selectivity-chosen anchor and its estimate.
            from repro.runtime.match_planner import plan_paths

            plan = plan_paths(ctx, clause.pattern.paths, {})
            for path_plan in plan.ordered:
                lines.append(
                    f"{prefix}  path {unparse(path_plan.path)}"
                    f"  [anchor: {path_plan.describe()}, "
                    f"est. {path_plan.cost:.0f} candidates]"
                )
            moved = plan.moved_count()
            if moved:
                lines.append(
                    f"{prefix}  ({moved} paths reordered by estimated cost)"
                )
        else:
            for path in clause.pattern.paths:
                anchor = path.elements[0]
                cost = estimate_node_cost(ctx, anchor, set(), {})
                lines.append(
                    f"{prefix}  path {unparse(path)}"
                    f"  [anchor: {_describe_anchor(ctx, anchor)}, "
                    f"est. {cost:.0f} candidates]"
                )
        if clause.where is not None:
            lines.append(f"{prefix}  filter {unparse(clause.where)}")
        return lines
    if isinstance(clause, ast.SetClause):
        executor = (
            "LegacySet(per-record, sequential items)"
            if dialect is Dialect.CYPHER9
            else "AtomicSet(collect propchanges/labchanges, detect conflicts)"
        )
        return [f"{prefix}{executor}: {unparse(clause)}"]
    if isinstance(clause, ast.DeleteClause):
        executor = (
            "LegacyDelete(immediate, dangling tolerated until commit)"
            if dialect is Dialect.CYPHER9
            else "StrictDelete(collect, validate, null out references)"
        )
        return [f"{prefix}{executor}: {unparse(clause)}"]
    if isinstance(clause, ast.MergeClause):
        executor = _MERGE_EXECUTORS[clause.semantics]
        return [f"{prefix}{executor}: {unparse(clause.pattern)}"]
    if isinstance(clause, ast.CreateClause):
        return [f"{prefix}Create(saturate, instantiate per record): "
                f"{unparse(clause.pattern)}"]
    if isinstance(clause, ast.ForeachClause):
        lines = [f"{prefix}Foreach({clause.variable} IN "
                 f"{unparse(clause.source)})"]
        for update in clause.updates:
            lines.extend(
                "  " + line for line in _explain_clause(ctx, update, dialect)
            )
        return lines
    return [f"{prefix}{type(clause).__name__.replace('Clause', '')}: "
            f"{unparse(clause)}"]


def render_profile(profile) -> str:
    """PROFILE-style rendering of a recorded query profile.

    One line per executed clause (children indented), followed by the
    statement totals.  Clause metrics are inclusive of their children.
    """
    header = (
        f"profile: dialect {profile.dialect}; "
        f"planner {'on' if profile.planner else 'off'}"
    )
    lines = [header]

    def emit(entry, depth: int) -> None:
        indent = "  " * (depth + 1)
        planner_note = ""
        if entry.anchor is not None:
            planner_note = f"; anchor {entry.anchor}"
            if entry.paths_reordered:
                planner_note += (
                    f"; {entry.paths_reordered} paths reordered"
                )
        lines.append(
            f"{indent}{entry.label}"
            f"  [rows {entry.rows_in} -> {entry.rows_out}; "
            f"{entry.time_ms:.2f} ms; db hits {entry.hits.compact()}"
            f"{planner_note}]"
        )
        for child in entry.children:
            emit(child, depth + 1)

    for entry in profile.clauses:
        emit(entry, 0)
    totals = profile.hits
    lines.append(
        f"  total: {totals.compact()} db hits in {profile.time_ms:.2f} ms"
    )
    compiler = profile.compiler
    if compiler:
        lines.append(
            f"  compiler: {compiler.get('expressions_compiled', 0)} "
            f"expressions compiled, "
            f"{compiler.get('cache_hits', 0)} closure-cache hits, "
            f"{compiler.get('constant_folded', 0)} constants folded"
        )
    return "\n".join(lines)


def _describe_anchor(ctx: EvalContext, anchor: ast.NodePattern) -> str:
    if anchor.variable is not None and not anchor.labels:
        candidates = "all nodes"
    elif anchor.labels:
        candidates = f"label scan :{anchor.labels[0]}"
    else:
        candidates = "all nodes"
    if anchor.properties is not None:
        for label in anchor.labels:
            for key, __ in anchor.properties.items:
                if ctx.store.property_index(label, key) is not None:
                    return f"index :{label}({key})"
    return candidates
