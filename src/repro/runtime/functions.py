"""Built-in (non-aggregate) Cypher functions.

Functions are registered in :data:`FUNCTIONS` as
``name -> (min_arity, max_arity, implementation)``; implementations take
the :class:`~repro.runtime.context.EvalContext` and the already
evaluated argument values.  Most functions are *null-propagating*: any
null argument yields null.  Functions that deliberately accept nulls
(``coalesce``, ``size`` on null, ...) opt out via ``_ACCEPTS_NULL``.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import CypherEvaluationError, CypherTypeError
from repro.graph.model import Node, Path, Relationship
from repro.graph.values import check_int64, is_number, type_name
from repro.runtime.context import EvalContext
from repro.runtime.limits import check_list_length

Implementation = Callable[..., Any]


def _check_entity(value: Any, function: str) -> None:
    if not isinstance(value, (Node, Relationship)):
        raise CypherTypeError(
            f"{function}() expects a Node or Relationship, "
            f"got {type_name(value)}"
        )


def _fn_id(ctx: EvalContext, value: Any) -> Any:
    _check_entity(value, "id")
    return value.id


def _fn_labels(ctx: EvalContext, value: Any) -> Any:
    if not isinstance(value, Node):
        raise CypherTypeError(f"labels() expects a Node, got {type_name(value)}")
    return sorted(value.labels)


def _fn_type(ctx: EvalContext, value: Any) -> Any:
    if not isinstance(value, Relationship):
        raise CypherTypeError(
            f"type() expects a Relationship, got {type_name(value)}"
        )
    return value.type


def _fn_properties(ctx: EvalContext, value: Any) -> Any:
    if isinstance(value, dict):
        return dict(value)
    _check_entity(value, "properties")
    return dict(value.properties)


def _fn_keys(ctx: EvalContext, value: Any) -> Any:
    if isinstance(value, dict):
        return sorted(value)
    _check_entity(value, "keys")
    return sorted(value.properties)


def _fn_start_node(ctx: EvalContext, value: Any) -> Any:
    if not isinstance(value, Relationship):
        raise CypherTypeError(
            f"startNode() expects a Relationship, got {type_name(value)}"
        )
    return value.start


def _fn_end_node(ctx: EvalContext, value: Any) -> Any:
    if not isinstance(value, Relationship):
        raise CypherTypeError(
            f"endNode() expects a Relationship, got {type_name(value)}"
        )
    return value.end


def _fn_size(ctx: EvalContext, value: Any) -> Any:
    if isinstance(value, (list, str)):
        return len(value)
    if isinstance(value, dict):
        return len(value)
    raise CypherTypeError(f"size() expects a List or String, got {type_name(value)}")


def _fn_length(ctx: EvalContext, value: Any) -> Any:
    if isinstance(value, Path):
        return len(value)
    if isinstance(value, (list, str)):
        return len(value)
    raise CypherTypeError(f"length() expects a Path, got {type_name(value)}")


def _fn_nodes(ctx: EvalContext, value: Any) -> Any:
    if not isinstance(value, Path):
        raise CypherTypeError(f"nodes() expects a Path, got {type_name(value)}")
    return list(value.nodes)


def _fn_relationships(ctx: EvalContext, value: Any) -> Any:
    if not isinstance(value, Path):
        raise CypherTypeError(
            f"relationships() expects a Path, got {type_name(value)}"
        )
    return list(value.relationships)


def _fn_degree(ctx: EvalContext, value: Any) -> Any:
    if not isinstance(value, Node):
        raise CypherTypeError(f"degree() expects a Node, got {type_name(value)}")
    return value.degree()


def _fn_coalesce(ctx: EvalContext, *values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


def _fn_head(ctx: EvalContext, value: Any) -> Any:
    _require_list(value, "head")
    return value[0] if value else None


def _fn_last(ctx: EvalContext, value: Any) -> Any:
    _require_list(value, "last")
    return value[-1] if value else None


def _fn_tail(ctx: EvalContext, value: Any) -> Any:
    _require_list(value, "tail")
    return list(value[1:])


def _fn_reverse(ctx: EvalContext, value: Any) -> Any:
    if isinstance(value, str):
        return value[::-1]
    _require_list(value, "reverse")
    return list(reversed(value))


def _fn_range(ctx: EvalContext, start: Any, end: Any, step: Any = 1) -> Any:
    for argument in (start, end, step):
        if not isinstance(argument, int) or isinstance(argument, bool):
            raise CypherTypeError("range() expects Integer arguments")
    if step == 0:
        raise CypherEvaluationError("range() step must not be zero")
    # Compute the result size *before* materialising anything:
    # range(0, 2^62) must fail with a resource-limit error, not OOM
    # the process (a remote denial of service once a server exists).
    if step > 0:
        count = (end - start) // step + 1 if end >= start else 0
    else:
        count = (start - end) // (-step) + 1 if start >= end else 0
    check_list_length(count, "range()")
    if step > 0:
        return list(range(start, end + 1, step))
    return list(range(start, end - 1, step))


def _require_list(value: Any, function: str) -> None:
    if not isinstance(value, list):
        raise CypherTypeError(
            f"{function}() expects a List, got {type_name(value)}"
        )


# --- type conversions -------------------------------------------------------

def _fn_to_integer(ctx: EvalContext, value: Any) -> Any:
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return None
        result = int(value)
        check_int64(result, "toInteger()")
        return result
    if isinstance(value, str):
        try:
            result = int(value.strip())
        except ValueError:
            try:
                number = float(value.strip())
            except ValueError:
                return None
            if math.isnan(number) or math.isinf(number):
                # int() would leak OverflowError on "1e999" etc.;
                # treat like the non-finite Float input above.
                return None
            result = int(number)
        check_int64(result, "toInteger()")
        return result
    raise CypherTypeError(f"toInteger() cannot convert {type_name(value)}")


def _fn_to_float(ctx: EvalContext, value: Any) -> Any:
    if isinstance(value, bool):
        raise CypherTypeError("toFloat() cannot convert Boolean")
    if is_number(value):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    raise CypherTypeError(f"toFloat() cannot convert {type_name(value)}")


def _fn_to_string(ctx: EvalContext, value: Any) -> Any:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if is_number(value):
        if isinstance(value, float):
            if math.isnan(value):
                return "NaN"
            if math.isinf(value):
                return "Infinity" if value > 0 else "-Infinity"
            return repr(value)
        return str(value)
    raise CypherTypeError(f"toString() cannot convert {type_name(value)}")


def _fn_to_boolean(ctx: EvalContext, value: Any) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered == "true":
            return True
        if lowered == "false":
            return False
        return None
    raise CypherTypeError(f"toBoolean() cannot convert {type_name(value)}")


# --- numeric ----------------------------------------------------------------

def _numeric(function: str, value: Any) -> float | int:
    if not is_number(value):
        raise CypherTypeError(
            f"{function}() expects a number, got {type_name(value)}"
        )
    return value


def _fn_abs(ctx: EvalContext, value: Any) -> Any:
    result = abs(_numeric("abs", value))
    if isinstance(result, int):
        check_int64(result, "abs()")
    return result


def _fn_sign(ctx: EvalContext, value: Any) -> Any:
    number = _numeric("sign", value)
    return (number > 0) - (number < 0)


def _fn_ceil(ctx: EvalContext, value: Any) -> Any:
    number = _numeric("ceil", value)
    if isinstance(number, float) and not math.isfinite(number):
        # math.ceil would leak a raw ValueError/OverflowError; the
        # ceiling of a non-finite float is the float itself (round()
        # precedent above).
        return number
    return float(math.ceil(number))


def _fn_floor(ctx: EvalContext, value: Any) -> Any:
    number = _numeric("floor", value)
    if isinstance(number, float) and not math.isfinite(number):
        return number
    return float(math.floor(number))


def _fn_round(ctx: EvalContext, value: Any) -> Any:
    """Round half up, without the ``floor(x + 0.5)`` precision trap.

    ``x + 0.5`` itself rounds in binary floating point:
    ``0.49999999999999994 + 0.5`` is exactly ``1.0``, so the naive
    formula rounded the largest double below one half *up*.  It also
    broke integral huge magnitudes, where adding 0.5 rounds to the
    next representable double.  Comparing the exact fractional part
    ``x - floor(x)`` (always exactly representable for a finite
    double) against 0.5 has neither failure mode.
    """
    number = _numeric("round", value)
    if isinstance(number, int):
        return float(number)
    if not math.isfinite(number):
        # floor() would raise a raw ValueError/OverflowError on
        # NaN/Inf; rounding a non-finite float is the float itself.
        return number
    floor = math.floor(number)
    if number - floor >= 0.5:
        floor += 1
    return float(floor)


def _fn_sqrt(ctx: EvalContext, value: Any) -> Any:
    number = _numeric("sqrt", value)
    if number < 0:
        return float("nan")
    return math.sqrt(number)


def _fn_exp(ctx: EvalContext, value: Any) -> Any:
    try:
        return math.exp(_numeric("exp", value))
    except OverflowError:
        # math.exp(746.0) leaks "OverflowError: math range error";
        # IEEE-754 exp saturates to +Infinity, matching the repo's
        # float-arithmetic overflow semantics.
        return float("inf")


def _fn_log(ctx: EvalContext, value: Any) -> Any:
    number = _numeric("log", value)
    if number <= 0:
        return float("nan")
    return math.log(number)


def _fn_log10(ctx: EvalContext, value: Any) -> Any:
    number = _numeric("log10", value)
    if number <= 0:
        return float("nan")
    return math.log10(number)


# --- strings ----------------------------------------------------------------

def _require_string(value: Any, function: str) -> str:
    if not isinstance(value, str):
        raise CypherTypeError(
            f"{function}() expects a String, got {type_name(value)}"
        )
    return value


def _fn_to_upper(ctx: EvalContext, value: Any) -> Any:
    return _require_string(value, "toUpper").upper()


def _fn_to_lower(ctx: EvalContext, value: Any) -> Any:
    return _require_string(value, "toLower").lower()


def _fn_trim(ctx: EvalContext, value: Any) -> Any:
    return _require_string(value, "trim").strip()


def _fn_ltrim(ctx: EvalContext, value: Any) -> Any:
    return _require_string(value, "lTrim").lstrip()


def _fn_rtrim(ctx: EvalContext, value: Any) -> Any:
    return _require_string(value, "rTrim").rstrip()


def _fn_replace(ctx: EvalContext, value: Any, search: Any, replacement: Any) -> Any:
    return _require_string(value, "replace").replace(
        _require_string(search, "replace"),
        _require_string(replacement, "replace"),
    )


def _fn_split(ctx: EvalContext, value: Any, separator: Any) -> Any:
    text = _require_string(value, "split")
    sep = _require_string(separator, "split")
    if not sep:
        # Python's str.split raises "ValueError: empty separator",
        # which leaked out of the engine uncaught.  Neo4j splits into
        # the list of characters (and '' into the empty list).
        return list(text)
    return text.split(sep)


def _require_non_negative(value: int, function: str, role: str) -> int:
    # Guard against Python's negative-index semantics leaking through
    # slicing: openCypher requires a NegativeIntegerArgument error.
    if value < 0:
        raise CypherEvaluationError(
            f"{function}() {role} must be non-negative, got {value}"
        )
    return value


def _fn_substring(ctx: EvalContext, value: Any, start: Any, length: Any = None) -> Any:
    text = _require_string(value, "substring")
    if not isinstance(start, int) or isinstance(start, bool):
        raise CypherTypeError("substring() start must be an Integer")
    _require_non_negative(start, "substring", "start")
    if length is None:
        return text[start:]
    if not isinstance(length, int) or isinstance(length, bool):
        raise CypherTypeError("substring() length must be an Integer")
    _require_non_negative(length, "substring", "length")
    return text[start : start + length]


def _fn_left(ctx: EvalContext, value: Any, length: Any) -> Any:
    text = _require_string(value, "left")
    if not isinstance(length, int) or isinstance(length, bool):
        raise CypherTypeError("left() length must be an Integer")
    _require_non_negative(length, "left", "length")
    return text[:length]


def _fn_right(ctx: EvalContext, value: Any, length: Any) -> Any:
    text = _require_string(value, "right")
    if not isinstance(length, int) or isinstance(length, bool):
        raise CypherTypeError("right() length must be an Integer")
    _require_non_negative(length, "right", "length")
    return text[-length:] if length else ""


#: name -> (min_arity, max_arity, implementation)
FUNCTIONS: dict[str, tuple[int, int, Implementation]] = {
    "id": (1, 1, _fn_id),
    "labels": (1, 1, _fn_labels),
    "type": (1, 1, _fn_type),
    "properties": (1, 1, _fn_properties),
    "keys": (1, 1, _fn_keys),
    "startnode": (1, 1, _fn_start_node),
    "endnode": (1, 1, _fn_end_node),
    "size": (1, 1, _fn_size),
    "length": (1, 1, _fn_length),
    "nodes": (1, 1, _fn_nodes),
    "relationships": (1, 1, _fn_relationships),
    "degree": (1, 1, _fn_degree),
    "coalesce": (1, 255, _fn_coalesce),
    "head": (1, 1, _fn_head),
    "last": (1, 1, _fn_last),
    "tail": (1, 1, _fn_tail),
    "reverse": (1, 1, _fn_reverse),
    "range": (2, 3, _fn_range),
    "tointeger": (1, 1, _fn_to_integer),
    "tofloat": (1, 1, _fn_to_float),
    "tostring": (1, 1, _fn_to_string),
    "toboolean": (1, 1, _fn_to_boolean),
    "abs": (1, 1, _fn_abs),
    "sign": (1, 1, _fn_sign),
    "ceil": (1, 1, _fn_ceil),
    "floor": (1, 1, _fn_floor),
    "round": (1, 1, _fn_round),
    "sqrt": (1, 1, _fn_sqrt),
    "exp": (1, 1, _fn_exp),
    "log": (1, 1, _fn_log),
    "log10": (1, 1, _fn_log10),
    "toupper": (1, 1, _fn_to_upper),
    "tolower": (1, 1, _fn_to_lower),
    "trim": (1, 1, _fn_trim),
    "ltrim": (1, 1, _fn_ltrim),
    "rtrim": (1, 1, _fn_rtrim),
    "replace": (3, 3, _fn_replace),
    "split": (2, 2, _fn_split),
    "substring": (2, 3, _fn_substring),
    "left": (2, 2, _fn_left),
    "right": (2, 2, _fn_right),
}

#: Functions that receive null arguments instead of short-circuiting.
_ACCEPTS_NULL = frozenset({"coalesce"})


def call_function(ctx: EvalContext, name: str, args: list[Any]) -> Any:
    """Dispatch a built-in function call on evaluated arguments."""
    entry = FUNCTIONS.get(name)
    if entry is None:
        raise CypherEvaluationError(f"unknown function {name}()")
    min_arity, max_arity, implementation = entry
    if not min_arity <= len(args) <= max_arity:
        expected = (
            str(min_arity)
            if min_arity == max_arity
            else f"{min_arity}..{max_arity}"
        )
        raise CypherEvaluationError(
            f"{name}() expects {expected} argument(s), got {len(args)}"
        )
    if name not in _ACCEPTS_NULL and any(arg is None for arg in args):
        return None
    return implementation(ctx, *args)
