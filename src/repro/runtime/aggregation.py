"""Aggregation support for RETURN and WITH projections.

Cypher has no GROUP BY: a projection containing aggregate calls
implicitly groups by its non-aggregate items.  This module provides

* detection of aggregate expressions in an AST (:func:`contains_aggregate`),
* the aggregate function implementations themselves, with Cypher's null
  rules (nulls are skipped; ``count(*)`` counts records; aggregates over
  an empty group yield their neutral value), and
* ``DISTINCT`` handling inside aggregate calls.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterator

from repro.errors import CypherEvaluationError, CypherTypeError
from repro.graph.values import grouping_key, is_number, sort_key, type_name
from repro.parser import ast

#: Names callable as aggregate functions (lower case).
AGGREGATE_NAMES = frozenset(
    {
        "count",
        "sum",
        "avg",
        "min",
        "max",
        "collect",
        "stdev",
        "stdevp",
        "percentiledisc",
        "percentilecont",
    }
)


def is_aggregate_call(expression: ast.Expression) -> bool:
    """True for ``count(*)`` or a call to an aggregate function."""
    if isinstance(expression, ast.CountStar):
        return True
    return (
        isinstance(expression, ast.FunctionCall)
        and expression.name in AGGREGATE_NAMES
    )


def children(expression: Any) -> Iterator[ast.Expression]:
    """Yield the direct expression children of any AST node."""
    if not dataclasses.is_dataclass(expression):
        return
    for field in dataclasses.fields(expression):
        value = getattr(expression, field.name)
        if isinstance(value, ast.Expression):
            yield value
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, ast.Expression):
                    yield item
                elif isinstance(item, tuple):
                    for nested in item:
                        if isinstance(nested, ast.Expression):
                            yield nested


def contains_aggregate(expression: ast.Expression) -> bool:
    """True if the expression tree contains any aggregate call."""
    if is_aggregate_call(expression):
        return True
    return any(contains_aggregate(child) for child in children(expression))


class AggregateAccumulator:
    """Accumulates one aggregate call over the records of one group."""

    def __init__(self, name: str, distinct: bool = False):
        if name not in AGGREGATE_NAMES and name != "count(*)":
            raise CypherEvaluationError(f"unknown aggregate {name}()")
        self.name = name
        self.distinct = distinct
        self._seen: set = set()
        self._count = 0
        self._sum: Any = 0
        self._values: list[Any] = []
        self._min: Any = None
        self._max: Any = None

    def add(self, value: Any) -> None:
        """Feed one evaluated argument value (record by record)."""
        if self.name == "count(*)":
            self._count += 1
            return
        if value is None:
            return  # aggregates skip nulls
        if self.distinct:
            key = grouping_key(value)
            if key in self._seen:
                return
            self._seen.add(key)
        self._count += 1
        if self.name == "count":
            return
        if self.name == "collect":
            self._values.append(value)
            return
        if self.name in ("min", "max"):
            self._update_extremum(value)
            return
        if self.name in (
            "sum",
            "avg",
            "stdev",
            "stdevp",
            "percentiledisc",
            "percentilecont",
        ):
            if not is_number(value):
                raise CypherTypeError(
                    f"{self.name}() expects numbers, got {type_name(value)}"
                )
            self._sum += value
            self._values.append(value)
            return
        raise AssertionError(f"unhandled aggregate {self.name}")

    def _update_extremum(self, value: Any) -> None:
        key = sort_key(value)
        if self.name == "min":
            if self._min is None or key < self._min[0]:
                self._min = (key, value)
        else:
            if self._max is None or key > self._max[0]:
                self._max = (key, value)

    def result(self, percentile: Any = None) -> Any:
        """Final value of the aggregate for this group."""
        if self.name in ("count", "count(*)"):
            return self._count
        if self.name == "collect":
            return list(self._values)
        if self.name == "min":
            return self._min[1] if self._min is not None else None
        if self.name == "max":
            return self._max[1] if self._max is not None else None
        if self.name == "sum":
            return self._sum
        if self.name == "avg":
            return self._sum / self._count if self._count else None
        if self.name in ("stdev", "stdevp"):
            return self._stdev(sample=self.name == "stdev")
        if self.name in ("percentiledisc", "percentilecont"):
            return self._percentile(percentile)
        raise AssertionError(f"unhandled aggregate {self.name}")

    def _stdev(self, *, sample: bool) -> Any:
        if not self._count:
            return None
        if self._count == 1:
            return 0.0
        mean = self._sum / self._count
        variance = sum((v - mean) ** 2 for v in self._values)
        divisor = self._count - 1 if sample else self._count
        return math.sqrt(variance / divisor)

    def _percentile(self, percentile: Any) -> Any:
        if not is_number(percentile) or not 0 <= percentile <= 1:
            raise CypherEvaluationError(
                "percentile must be a number between 0.0 and 1.0"
            )
        if not self._values:
            return None
        ordered = sorted(self._values)
        if self.name == "percentiledisc":
            index = max(0, math.ceil(percentile * len(ordered)) - 1)
            return ordered[index]
        if len(ordered) == 1:
            return float(ordered[0])
        position = percentile * (len(ordered) - 1)
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return float(ordered[low])
        fraction = position - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction
