"""Shared runtime: tables, expressions, matching, pipeline."""

from repro.runtime.context import EvalContext, MatchMode
from repro.runtime.table import DrivingTable

__all__ = ["DrivingTable", "EvalContext", "MatchMode"]
