"""Shared evaluation context threaded through the runtime.

A single :class:`EvalContext` carries everything expression evaluation
and pattern matching need: the graph store, statement parameters, and
the pattern-matching mode (trail vs homomorphism, Section 6 discussion
of Example 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.graph.store import GraphStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.profile import QueryProfile


class MatchMode(enum.Enum):
    """Which pattern-matching regime MATCH (and MERGE's read) uses."""

    #: Cypher's standard semantics: distinct relationship patterns must
    #: be mapped to distinct relationships ("each edge traversed at most
    #: once"), guaranteeing finite outputs for ``[*]`` patterns.
    TRAIL = "trail"

    #: Homomorphism-based matching: relationships may be reused.  The
    #: paper notes (end of Section 6) that under this regime a pattern
    #: inserted by Strong Collapse MERGE can always be re-matched.
    HOMOMORPHISM = "homomorphism"


@dataclass
class EvalContext:
    """Evaluation state for one statement execution."""

    store: GraphStore
    parameters: Mapping[str, Any] = field(default_factory=dict)
    match_mode: MatchMode = MatchMode.TRAIL

    #: Cap on variable-length path hops when no upper bound is given in
    #: homomorphism mode, where unbounded patterns would otherwise admit
    #: infinitely many matches on cyclic graphs.
    homomorphism_hop_limit: int = 16

    #: Enable the selectivity-driven match planner
    #: (repro.runtime.match_planner) for pattern matching.  Off by
    #: default so the default pipeline stays a literal transcription of
    #: the paper's matcher.
    use_planner: bool = False

    #: The legacy dialect's anomalies are order-reproducible, so its
    #: executor sets this and the planner re-sorts (or falls back to)
    #: the naive ascending-id enumeration order per record.
    preserve_match_order: bool = False

    #: When set, the pipeline brackets every clause with begin/end on
    #: this profile, attributing db-hits and wall time (PROFILE mode).
    profile: Optional["QueryProfile"] = None

    #: Morsel workers for read-only pipeline segments.  1 (the default)
    #: keeps the serial row-at-a-time executor; >1 lets the pipeline
    #: partition the driving table and run read-only segments in
    #: parallel (see repro.runtime.parallel).
    workers: int = 1

    #: Executor backing the morsel workers: "thread" (default; the
    #: columnar store is read-shared safely) or "process" (fork-based
    #: pool, opt-in for CPU-bound predicates that the GIL serialises).
    parallel_executor: str = "thread"
