"""A greedy endpoint planner for pattern matching.

The baseline matcher walks every path pattern left to right, anchoring
at its first node pattern.  For patterns like::

    MATCH (a)-[:ORDERED]->(b:Product {id: 42})

that means scanning *all* nodes for ``a`` and expanding, even though
``b`` pins the match to (at most) one index hit.  The planner fixes the
two cheap, high-value cases without touching the matcher itself:

* **path reversal** -- if the last node of a path is estimated cheaper
  to enumerate than the first, the path is reversed (elements reversed,
  relationship directions flipped); matching semantics is unchanged
  because a path pattern and its mirror match exactly the same subgraphs;

* **path reordering** -- within one MATCH, paths whose anchors are
  cheaper (bound variables, index hits, small labels) run first, so
  later paths see more bound variables.

Cost estimates come from the store: 0 for bound variables, the index
bucket size for property-indexed lookups, the label-index count for
labeled nodes, the total node count otherwise.

The planner changes only *enumeration order*, so revised-dialect
results are unaffected (they are order-insensitive by design); under
the legacy dialect enumeration order is observable through the
anomalies the paper documents, so planning is **opt-in**
(``Graph(..., use_planner=True)``).  `benchmarks/bench_planner.py`
measures the effect.

This module remains the reference formulation of the cost model (its
:func:`estimate_node_cost` and :func:`reverse_path` are exercised
directly by the test suite), but execution now goes through
:mod:`repro.runtime.match_planner`, which plans *inside* the matcher:
it anchors a walk at any node element (not just an endpoint), covers
MERGE and pattern predicates as well as MATCH, and re-sorts matches
into naive enumeration order when the legacy dialect needs it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.parser import ast
from repro.runtime.compiler import compile_expression
from repro.runtime.context import EvalContext


def plan_pattern(
    ctx: EvalContext, pattern: ast.Pattern, record: Mapping[str, Any]
) -> ast.Pattern:
    """Return an equivalent pattern optimised for *record*'s bindings."""
    bound: set[str] = {
        name for name, value in record.items() if value is not None
    }
    oriented = [
        _orient_path(ctx, path, bound, record) for path in pattern.paths
    ]
    oriented.sort(key=lambda pair: pair[0])
    planned: list[ast.PathPattern] = []
    for __, path in oriented:
        planned.append(path)
        # Later paths benefit from the variables earlier ones bind.
        for element in path.elements:
            if element.variable is not None:
                bound.add(element.variable)
    return ast.Pattern(paths=tuple(planned))


def estimate_node_cost(
    ctx: EvalContext,
    element: ast.NodePattern,
    bound: set[str],
    record: Mapping[str, Any],
) -> float:
    """Estimated candidate count for anchoring a walk at *element*."""
    if element.variable is not None and element.variable in bound:
        return 0.0
    store = ctx.store
    best = float(store.node_count())
    for label in element.labels:
        best = min(best, float(len(store.nodes_with_label(label))))
        if element.properties is not None:
            for key, expr in element.properties.items:
                index = store.property_index(label, key)
                if index is None:
                    continue
                value = _try_evaluate(ctx, expr, record, bound)
                if value is _UNKNOWN:
                    # Index exists but the key depends on unbound vars;
                    # assume an average bucket.
                    best = min(best, max(1.0, len(index) / 8.0))
                else:
                    best = min(best, float(len(index.lookup(value))))
    # An (un-indexed) property map still filters; discount mildly so a
    # property-carrying end beats a bare one with the same label.
    if element.properties is not None and element.properties.items:
        best *= 0.9
    return best


_UNKNOWN = object()


def _try_evaluate(
    ctx: EvalContext,
    expression: ast.Expression,
    record: Mapping[str, Any],
    bound: set[str],
) -> Any:
    """Evaluate a property expression if its variables are bound."""
    if not _variables_of(expression) <= bound | set(record.keys()):
        return _UNKNOWN
    try:
        return compile_expression(expression)(ctx, dict(record))
    except Exception:
        return _UNKNOWN


def _variables_of(expression: ast.Expression) -> set[str]:
    from repro.runtime.aggregation import children

    names: set[str] = set()
    if isinstance(expression, ast.Variable):
        names.add(expression.name)
    for child in children(expression):
        names |= _variables_of(child)
    return names


def _orient_path(
    ctx: EvalContext,
    path: ast.PathPattern,
    bound: set[str],
    record: Mapping[str, Any],
) -> tuple[float, ast.PathPattern]:
    """Pick the cheaper end of *path* as its anchor; return (cost, path)."""
    elements = path.elements
    first = elements[0]
    last = elements[-1]
    first_cost = estimate_node_cost(ctx, first, bound, record)
    if len(elements) == 1 or not _reversible(path):
        return first_cost, path
    last_cost = estimate_node_cost(ctx, last, bound, record)
    if last_cost < first_cost:
        return last_cost, reverse_path(path)
    return first_cost, path


def _reversible(path: ast.PathPattern) -> bool:
    """True if reversing cannot change any observable binding.

    A named path binds a directed Path value, and a named
    variable-length relationship binds a traversal-ordered list; both
    would be mirrored by reversal, so such paths keep their orientation.
    """
    if path.variable is not None:
        return False
    return not any(
        rel.is_var_length and rel.variable is not None
        for rel in path.relationships
    )


def reverse_path(path: ast.PathPattern) -> ast.PathPattern:
    """The mirror image of a path pattern (same matches, same bindings).

    Nodes and relationships are listed in reverse order and every
    directed relationship pattern flips its arrow; undirected patterns
    are symmetric already.
    """
    reversed_elements = []
    for element in reversed(path.elements):
        if isinstance(element, ast.RelationshipPattern):
            if element.direction == ast.OUT:
                element = dataclasses.replace(element, direction=ast.IN)
            elif element.direction == ast.IN:
                element = dataclasses.replace(element, direction=ast.OUT)
        reversed_elements.append(element)
    return ast.PathPattern(
        variable=path.variable, elements=tuple(reversed_elements)
    )
