"""Morsel-parallel execution of read-only pipeline segments.

The clause pipeline is row-at-a-time Python; this module batches it.
:func:`execute_clauses_morsel` splits a clause sequence into maximal
record-local runs (see :func:`repro.runtime.pipeline.analyze_segments`),
partitions the driving table into *morsels* (chunked views that share
the record dicts), runs each morsel through the run's clauses on a
worker pool, and concatenates the outputs in morsel order.

Why that is exact
-----------------
Every clause in a parallel run is *record-local*: for each input record
it emits zero or more output records derived from that record alone, in
input order, without touching the graph.  Composition preserves the
property, so the run as a whole maps record ``i``'s descendants ahead
of record ``j``'s whenever ``i < j`` -- concatenating per-morsel
outputs in morsel order is byte-identical to the serial executor, for
both dialects.  No extra ordering work is needed: the legacy dialect's
exact record order and the revised dialect's multiset semantics both
fall out of the concatenation.

Errors are reproduced exactly as well: the serial executor runs one
clause over the *whole* table before the next clause, so the first
serial error is the one at the minimal ``(clause index, record index)``
pair.  Each worker processes its morsel's records in order, so within a
clause the earliest failing record lives in the earliest failing
morsel.  The scheduler therefore lets every morsel run to completion,
collects per-morsel ``(clause index, error)`` outcomes, and re-raises
the error minimal under ``(clause index, morsel index)``.

Executors
---------
``thread`` (default): the columnar store is read-shared safely and the
per-clause Python overhead overlaps with any C-level work, but the GIL
bounds CPU-bound speedup.  ``process``: a fork-based pool (opt-in;
falls back to threads where fork is unavailable) copies the store into
workers for true CPU parallelism; entity values are exchanged as id
markers and rehydrated against the parent's store, which is sound
because the segment is read-only, so ids are stable across the fork.
"""

from __future__ import annotations

import pickle
import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Iterator

from repro.dialect import Dialect
from repro.errors import CypherError
from repro.parser import ast
from repro.runtime.context import EvalContext
from repro.runtime.table import DrivingTable

#: Peel clauses serially until the driving table has at least this many
#: records -- below it, morsel overhead swamps any win (queries start
#: from the one-record unit table, so the first MATCH/UNWIND usually
#: runs serially and *its output* is what gets partitioned).
DEFAULT_MIN_PARALLEL_ROWS = 8

#: Morsels per worker: small enough to amortise dispatch, large enough
#: that an unlucky skewed morsel cannot serialise the whole segment.
MORSELS_PER_WORKER = 4

#: Ceiling on workers any single statement may use, scoped per request
#: on the server (see :func:`worker_limit`).
DEFAULT_MAX_WORKERS = 64

_max_workers = DEFAULT_MAX_WORKERS
_min_parallel_rows = DEFAULT_MIN_PARALLEL_ROWS


def max_workers() -> int:
    """The worker-count cap active in the current scope."""
    return _max_workers


@contextmanager
def worker_limit(limit: int) -> Iterator[None]:
    """Scoped override of the worker-count cap (nestable).

    Mirrors :func:`repro.runtime.limits.list_length_limit`: the server
    wraps each request so one client cannot monopolise the host's
    cores regardless of the session's ``workers=`` setting.
    """
    global _max_workers
    if limit < 1:
        raise ValueError("worker limit must be >= 1")
    previous = _max_workers
    _max_workers = limit
    try:
        yield
    finally:
        _max_workers = previous


@contextmanager
def parallel_min_rows(rows: int) -> Iterator[None]:
    """Scoped override of the minimum table size worth partitioning.

    Tests and the differential fuzzer lower it so tiny tables still
    exercise the morsel path.
    """
    global _min_parallel_rows
    if rows < 1:
        raise ValueError("minimum parallel rows must be >= 1")
    previous = _min_parallel_rows
    _min_parallel_rows = rows
    try:
        yield
    finally:
        _min_parallel_rows = previous


def execute_clauses_morsel(
    ctx: EvalContext,
    clauses: tuple[ast.Clause, ...],
    table: DrivingTable,
    dialect: Dialect,
) -> DrivingTable:
    """Run a clause sequence, parallelising its record-local runs."""
    from repro.runtime.pipeline import analyze_segments, execute_clause

    for kind, segment in analyze_segments(clauses):
        if kind == "parallel":
            table = _execute_parallel_segment(ctx, segment, table, dialect)
        else:
            for clause in segment:
                table = execute_clause(ctx, clause, table, dialect)
    return table


def _execute_parallel_segment(
    ctx: EvalContext,
    segment: tuple[ast.Clause, ...],
    table: DrivingTable,
    dialect: Dialect,
) -> DrivingTable:
    from repro.runtime.pipeline import execute_clause

    workers = min(ctx.workers, _max_workers)
    # Peel leading clauses serially while the table is too small to
    # split -- typically the anchoring MATCH or UNWIND that fans the
    # unit table out into real cardinality.
    index = 0
    while index < len(segment) and (
        workers <= 1 or len(table) < _min_parallel_rows
    ):
        table = execute_clause(ctx, segment[index], table, dialect)
        index += 1
    clauses = segment[index:]
    if not clauses:
        return table

    size = -(-len(table) // (workers * MORSELS_PER_WORKER))
    morsels = table.chunks(max(1, size))
    workers = min(workers, len(morsels))
    worker_ctx = replace(ctx, profile=None, workers=1)
    _warm_compile(worker_ctx, clauses, table.columns, dialect)

    profile = ctx.profile
    entry = None
    if profile is not None:
        label = "ParallelSegment[" + " ".join(
            type(clause).__name__.replace("Clause", "") for clause in clauses
        ) + "]"
        entry = profile.begin(label, len(table))
    result = None
    try:
        if ctx.parallel_executor == "process" and _fork_available():
            outcomes = _run_process(
                worker_ctx, clauses, morsels, dialect, workers
            )
        else:
            outcomes = _run_threads(
                worker_ctx, clauses, morsels, dialect, workers
            )
        result = _merge(outcomes)
        if entry is not None:
            profile.annotate(
                workers=workers,
                morsels=len(morsels),
                morsel_ms=[outcome[0] for outcome in outcomes],
            )
        return result
    finally:
        if entry is not None:
            profile.end(entry, len(result) if result is not None else 0)


def _merge(
    outcomes: list[tuple[float, tuple[str, ...], list[dict], Any]],
) -> DrivingTable:
    """Concatenate morsel outputs in order; re-raise the minimal error.

    An outcome is ``(elapsed_ms, columns, records, error)`` where
    *error* is ``None`` or ``(clause_index, exception)``.  All morsels
    ran to completion, so the error raised is the one the serial
    executor would have hit first: minimal ``(clause_index,
    morsel_index)``.
    """
    first_error = None
    first_key = None
    for morsel_index, (_, __, ___, error) in enumerate(outcomes):
        if error is None:
            continue
        key = (error[0], morsel_index)
        if first_key is None or key < first_key:
            first_key = key
            first_error = error[1]
    if first_error is not None:
        raise first_error
    columns = outcomes[0][1]
    records: list[dict] = []
    for _, __, morsel_records, ___ in outcomes:
        records.extend(morsel_records)
    return DrivingTable.from_trusted(columns, records)


def _warm_compile(
    ctx: EvalContext,
    clauses: tuple[ast.Clause, ...],
    columns: tuple[str, ...],
    dialect: Dialect,
) -> None:
    """Populate the compiler caches before dispatching workers.

    Running the clauses over an empty table compiles every expression
    (compilation happens before the row loops) without touching a
    record or the store, so workers start with warm shared caches --
    and, in process mode, inherit them through the fork.  Errors are
    swallowed: this is purely a cache warmer, and letting a
    table-independent error from a *later* clause surface here would
    pre-empt an earlier clause's data-dependent error, diverging from
    serial error order.
    """
    from repro.runtime.pipeline import _dispatch_clause

    try:
        table = DrivingTable.empty(columns)
        for clause in clauses:
            table = _dispatch_clause(ctx, clause, table, dialect)
    except Exception:
        pass


def _run_morsel(
    ctx: EvalContext,
    clauses: tuple[ast.Clause, ...],
    morsel: DrivingTable,
    dialect: Dialect,
) -> tuple[float, tuple[str, ...], list[dict], Any]:
    """Run one morsel to completion; never raises."""
    from repro.runtime.pipeline import _dispatch_clause

    started = time.perf_counter()
    table = morsel
    for clause_index, clause in enumerate(clauses):
        try:
            table = _dispatch_clause(ctx, clause, table, dialect)
        except Exception as error:  # noqa: BLE001 - re-raised by _merge
            elapsed = (time.perf_counter() - started) * 1000
            return (elapsed, (), [], (clause_index, error))
    elapsed = (time.perf_counter() - started) * 1000
    return (elapsed, tuple(table.columns), table.records, None)


def _run_threads(
    ctx: EvalContext,
    clauses: tuple[ast.Clause, ...],
    morsels: list[DrivingTable],
    dialect: Dialect,
    workers: int,
) -> list[tuple[float, tuple[str, ...], list[dict], Any]]:
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_morsel, ctx, clauses, morsel, dialect)
            for morsel in morsels
        ]
        return [future.result() for future in futures]


# ---------------------------------------------------------------------------
# Process executor (fork-based, opt-in)
# ---------------------------------------------------------------------------

#: State handed to forked workers by inheritance rather than pickling:
#: (ctx, clauses, dialect, morsels).  Set immediately before the pool
#: forks, cleared after; workers receive only a morsel index.
_FORK_STATE: tuple | None = None

_NODE_TAG = "__repro.node__"
_REL_TAG = "__repro.rel__"
_PATH_TAG = "__repro.path__"


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _run_process(
    ctx: EvalContext,
    clauses: tuple[ast.Clause, ...],
    morsels: list[DrivingTable],
    dialect: Dialect,
    workers: int,
) -> list[tuple[float, tuple[str, ...], list[dict], Any]]:
    import multiprocessing

    global _FORK_STATE
    _FORK_STATE = (ctx, clauses, dialect, morsels)
    try:
        # A fresh pool per segment: the children's store copies go
        # stale the moment the parent mutates, and read-only segments
        # fork cheaply (copy-on-write).
        with multiprocessing.get_context("fork").Pool(workers) as pool:
            raw = pool.map(_process_morsel, range(len(morsels)))
    finally:
        _FORK_STATE = None
    store = ctx.store
    return [
        (
            elapsed,
            columns,
            [
                {name: _rehydrate(value, store) for name, value in record.items()}
                for record in records
            ],
            error,
        )
        for elapsed, columns, records, error in raw
    ]


def _process_morsel(
    morsel_index: int,
) -> tuple[float, tuple[str, ...], list[dict], Any]:
    """Worker-side morsel runner (executes in a forked child)."""
    ctx, clauses, dialect, morsels = _FORK_STATE
    elapsed, columns, records, error = _run_morsel(
        ctx, clauses, morsels[morsel_index], dialect
    )
    if error is not None:
        clause_index, exception = error
        try:
            pickle.dumps(exception)
        except Exception:
            exception = CypherError(
                f"{type(exception).__name__}: {exception}"
            )
        return (elapsed, columns, [], (clause_index, exception))
    sanitized = [
        {name: _sanitize(value) for name, value in record.items()}
        for record in records
    ]
    return (elapsed, columns, sanitized, None)


def _sanitize(value: Any) -> Any:
    """Replace entity handles with id markers for the trip home.

    Tuples are not Cypher values, so tagged tuples cannot collide with
    user data.
    """
    from repro.graph.model import Node, Path, Relationship

    if isinstance(value, Node):
        return (_NODE_TAG, value.id)
    if isinstance(value, Relationship):
        return (_REL_TAG, value.id)
    if isinstance(value, Path):
        return (
            _PATH_TAG,
            tuple(node.id for node in value.nodes),
            tuple(rel.id for rel in value.relationships),
        )
    if isinstance(value, list):
        return [_sanitize(item) for item in value]
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    return value


def _rehydrate(value: Any, store: Any) -> Any:
    """Rebind id markers to entity handles on the parent's store.

    Handles are constructed directly (not via ``store.node``) so
    rehydration neither perturbs db-hit counters nor re-validates ids
    that the read-only segment could not have changed.
    """
    from repro.graph.model import Node, Path, Relationship

    if isinstance(value, tuple):
        if value[0] == _NODE_TAG:
            return Node(store, value[1])
        if value[0] == _REL_TAG:
            return Relationship(store, value[1])
        if value[0] == _PATH_TAG:
            return Path(
                [Node(store, node_id) for node_id in value[1]],
                [Relationship(store, rel_id) for rel_id in value[2]],
            )
        raise AssertionError(f"unexpected tuple from worker: {value!r}")
    if isinstance(value, list):
        return [_rehydrate(item, store) for item in value]
    if isinstance(value, dict):
        return {key: _rehydrate(item, store) for key, item in value.items()}
    return value
