"""Reading clauses: MATCH, OPTIONAL MATCH, UNWIND, LOAD CSV.

Reading clauses never modify the graph: ``[[C]](G, T) = (G, [[C]]ro(T))``
(Section 8.1).  Each function here maps a driving table to a driving
table against a fixed graph.
"""

from __future__ import annotations

from repro.errors import CypherSemanticError, CypherTypeError
from repro.graph.values import type_name
from repro.parser import ast
from repro.runtime.compiler import compile_expression
from repro.runtime.context import EvalContext
from repro.runtime.matcher import match_pattern, pattern_variables
from repro.runtime.table import DrivingTable


def execute_match(
    ctx: EvalContext, clause: ast.MatchClause, table: DrivingTable
) -> DrivingTable:
    """MATCH / OPTIONAL MATCH with an optional WHERE filter."""
    new_variables = [
        name
        for name in pattern_variables(clause.pattern)
        if name not in table.columns
    ]
    # Planning happens inside the matcher (per record, so estimates see
    # each record's actual bindings) -- see repro.runtime.match_planner.
    pattern = clause.pattern
    where_fn = (
        compile_expression(clause.where) if clause.where is not None else None
    )
    columns = tuple(table.columns) + tuple(new_variables)
    rows: list[dict] = []
    append = rows.append
    for record in table:
        matched_any = False
        for bindings in match_pattern(ctx, pattern, record):
            if where_fn is not None:
                if where_fn(ctx, bindings) is not True:
                    continue
            matched_any = True
            append({name: bindings.get(name) for name in columns})
        if not matched_any and clause.optional:
            extended = dict(record)
            for name in new_variables:
                extended[name] = None
            append(extended)
    return DrivingTable.from_trusted(columns, rows)


def execute_unwind(
    ctx: EvalContext, clause: ast.UnwindClause, table: DrivingTable
) -> DrivingTable:
    """UNWIND expr AS x: one output record per list element."""
    if clause.variable in table.columns:
        raise CypherSemanticError(
            f"variable '{clause.variable}' is already bound"
        )
    expression_fn = compile_expression(clause.expression)
    columns = tuple(table.columns) + (clause.variable,)
    variable = clause.variable
    rows: list[dict] = []
    append = rows.append
    for record in table:
        value = expression_fn(ctx, record)
        if value is None:
            continue  # UNWIND null yields no rows
        elements = value if isinstance(value, list) else [value]
        for element in elements:
            extended = dict(record)
            extended[variable] = element
            append(extended)
    return DrivingTable.from_trusted(columns, rows)


def execute_load_csv(
    ctx: EvalContext, clause: ast.LoadCsvClause, table: DrivingTable
) -> DrivingTable:
    """LOAD CSV: bind each CSV row (list or map) to the row variable."""
    from repro.io.csv_io import read_csv_rows  # local import: io layering

    if clause.variable in table.columns:
        raise CypherSemanticError(
            f"variable '{clause.variable}' is already bound"
        )
    source_fn = compile_expression(clause.source)
    columns = tuple(table.columns) + (clause.variable,)
    out_rows: list[dict] = []
    for record in table:
        source = source_fn(ctx, record)
        if not isinstance(source, str):
            raise CypherTypeError(
                f"LOAD CSV expects a file path string, got {type_name(source)}"
            )
        rows = read_csv_rows(
            source,
            with_headers=clause.with_headers,
            delimiter=clause.field_terminator or ",",
        )
        for row in rows:
            extended = dict(record)
            extended[clause.variable] = row
            out_rows.append(extended)
    return DrivingTable.from_trusted(columns, out_rows)
