"""Equivalence-preserving plan rewrites.

Two rewrites run over read statements before execution, both verified
against the serial executor by the differential fuzzer (in the spirit
of *Proving Cypher Query Equivalence*: a candidate rule ships only with
a fuzzer-backed equivalence check):

**Predicate pushdown.**  ``MATCH (n:L) WHERE n.k = v`` becomes
``MATCH (n:L {k: v})``: the matcher and planner check pattern property
maps during candidate enumeration (and can serve them from property
indexes), so pushing a WHERE conjunct into the map filters before
binding instead of after.  Equivalence rests on three guarantees:

* the matcher's map check (``cypher_eq(entity.get(k), v) is not True``)
  is exactly the WHERE filter's acceptance test, including null rules;
* pushed value expressions can never raise -- a literal, a variable
  bound by an *earlier* clause (always present in the record), or a
  parameter present in the statement's actual parameters -- because
  property maps evaluate once per record *before* enumeration while
  WHERE evaluates only on actual matches;
* the rewrite is all-or-nothing per MATCH: a WHERE is removed only if
  *every* AND-conjunct is pushable.  Removing some conjuncts would
  change how often the remainder evaluates (``AND`` evaluates both
  operands), which is observable when a remaining conjunct can raise.

**Common-subexpression hoisting.**  Record-invariant pure subtrees
(no free variables, no pattern predicates, no aggregates) inside
per-row positions -- WHERE predicates, UNWIND sources, non-aggregating
projection items -- are wrapped in
:class:`~repro.parser.ast.HoistedExpression`, which the compiler turns
into a lazy per-statement memo: ``$threshold * 100`` evaluates once
per statement instead of once per record.  Laziness preserves error
semantics (zero records => no evaluation), and the function library is
deterministic and graph-independent, so one evaluation stands for all.

Rewrites never change result rows, row order, graph effects, or error
behaviour; statements are rewritten after semantic checking, keyed by
``(statement, initial columns, supplied parameter names)`` in a small
LRU.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace
from typing import Iterator, Optional

from repro.caching import LRUCache
from repro.parser import ast
from repro.runtime.aggregation import children, contains_aggregate, is_aggregate_call

_REWRITE_CACHE = LRUCache(capacity=512)

_ENABLED = True


def clear_cache() -> None:
    """Drop memoized rewrites (tests, cache-sensitive benchmarks)."""
    _REWRITE_CACHE.clear()


@contextmanager
def rewrites_disabled() -> Iterator[None]:
    """Scoped kill switch: statements pass through unrewritten."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def rewrite_statement(
    statement: ast.Statement,
    *,
    initial_columns: tuple[str, ...] = (),
    parameters: frozenset[str] = frozenset(),
) -> ast.Statement:
    """The statement with pushdown + hoisting applied (memoized)."""
    if not _ENABLED:
        return statement
    key = (statement, tuple(initial_columns), frozenset(parameters))
    cached = _REWRITE_CACHE.get(key)
    if cached is not None:
        return cached
    query = _rewrite_query(statement.query, frozenset(initial_columns), parameters)
    rewritten = (
        statement
        if query is statement.query
        else replace(statement, query=query)
    )
    _REWRITE_CACHE.put(key, rewritten)
    return rewritten


def _rewrite_query(query, bound: frozenset[str], parameters: frozenset[str]):
    if isinstance(query, ast.UnionQuery):
        left = _rewrite_query(query.left, bound, parameters)
        right = _rewrite_query(query.right, bound, parameters)
        if left is query.left and right is query.right:
            return query
        return replace(query, left=left, right=right)
    if isinstance(query, ast.SingleQuery):
        clauses = _rewrite_clauses(query.clauses, bound, parameters)
        if clauses is query.clauses:
            return query
        return replace(query, clauses=clauses)
    return query


def _rewrite_clauses(
    clauses: tuple[ast.Clause, ...],
    bound: frozenset[str],
    parameters: frozenset[str],
) -> tuple[ast.Clause, ...]:
    out: list[ast.Clause] = []
    changed = False
    for index, clause in enumerate(clauses):
        rewritten, next_bound = _rewrite_clause(clause, bound, parameters)
        if next_bound is None:
            # Unknown scope effect: keep the rest of the statement
            # verbatim rather than rewrite against a wrong scope.
            out.extend(clauses[index:])
            return tuple(out) if changed else clauses
        out.append(rewritten)
        changed = changed or rewritten is not clause
        bound = next_bound
    return tuple(out) if changed else clauses


def _rewrite_clause(
    clause: ast.Clause,
    bound: frozenset[str],
    parameters: frozenset[str],
) -> tuple[ast.Clause, Optional[frozenset[str]]]:
    """One clause rewritten, plus the variable scope it leaves behind.

    Returns ``(clause, None)`` when the clause's effect on scope is not
    modelled -- the caller then stops rewriting.
    """
    if isinstance(clause, ast.MatchClause):
        from repro.runtime.matcher import pattern_variables

        rewritten = _pushdown_match(clause, bound, parameters)
        if rewritten.where is not None:
            hoisted = _hoist(rewritten.where, bound)
            if hoisted is not rewritten.where:
                rewritten = replace(rewritten, where=hoisted)
        return rewritten, bound | set(pattern_variables(clause.pattern))
    if isinstance(clause, ast.UnwindClause):
        expression = _hoist(clause.expression, bound)
        rewritten = (
            clause
            if expression is clause.expression
            else replace(clause, expression=expression)
        )
        return rewritten, bound | {clause.variable}
    if isinstance(clause, (ast.WithClause, ast.ReturnClause)):
        return _rewrite_projection(clause, bound)
    if isinstance(clause, ast.LoadCsvClause):
        return clause, bound | {clause.variable}
    if isinstance(clause, (ast.CreateClause, ast.MergeClause)):
        from repro.runtime.matcher import pattern_variables

        return clause, bound | set(pattern_variables(clause.pattern))
    if isinstance(
        clause, (ast.SetClause, ast.RemoveClause, ast.DeleteClause,
                 ast.ForeachClause)
    ):
        return clause, bound
    return clause, None


def _rewrite_projection(
    clause,
    bound: frozenset[str],
) -> tuple[ast.Clause, Optional[frozenset[str]]]:
    """Hoist inside WITH / RETURN items and compute the output scope."""
    body = clause.body
    names: list[str] = list(bound) if body.include_existing else []
    items: list[ast.ProjectionItem] = []
    items_changed = False
    for item in body.items:
        names.append(_item_name(item))
        expression = item.expression
        # Grouping items of an aggregating projection still evaluate
        # per record, so hoisting them is equally sound; items that
        # contain aggregate calls are left alone.
        if not contains_aggregate(expression):
            hoisted = _hoist(expression, bound)
            if hoisted is not expression:
                item = replace(item, expression=hoisted)
                items_changed = True
        items.append(item)
    rewritten = clause
    if items_changed:
        rewritten = replace(clause, body=replace(body, items=tuple(items)))
    if isinstance(clause, ast.WithClause) and clause.where is not None:
        hoisted = _hoist(clause.where, frozenset(names))
        if hoisted is not clause.where:
            rewritten = replace(rewritten, where=hoisted)
    return rewritten, frozenset(names)


def _item_name(item: ast.ProjectionItem) -> str:
    """The output column name, mirroring projection._column_name."""
    from repro.parser.unparse import unparse

    if item.alias is not None:
        return item.alias
    if isinstance(item.expression, ast.Variable):
        return item.expression.name
    return unparse(item.expression)


# ---------------------------------------------------------------------------
# Predicate pushdown
# ---------------------------------------------------------------------------


def _pushdown_match(
    clause: ast.MatchClause,
    bound: frozenset[str],
    parameters: frozenset[str],
) -> ast.MatchClause:
    if clause.where is None:
        return clause
    from repro.runtime.matcher import pattern_variables

    fresh = frozenset(pattern_variables(clause.pattern)) - bound
    elements = _pushable_elements(clause.pattern, fresh)
    if not elements:
        return clause
    pushes: list[tuple[str, str, ast.Expression]] = []
    pushed_keys: dict[str, set[str]] = {}
    for conjunct in _split_and(clause.where):
        target = _pushdown_target(
            conjunct, elements, pushed_keys, bound, parameters
        )
        if target is None:
            # All-or-nothing: partial pushdown would change how often
            # the remaining (possibly raising) conjuncts evaluate.
            return clause
        variable, key, value = target
        pushed_keys.setdefault(variable, set()).add(key)
        pushes.append(target)
    pattern = _apply_pushes(clause.pattern, pushes)
    return replace(clause, pattern=pattern, where=None)


def _split_and(expression: ast.Expression) -> list[ast.Expression]:
    if isinstance(expression, ast.Binary) and expression.operator == "AND":
        return _split_and(expression.left) + _split_and(expression.right)
    return [expression]


def _pushable_elements(
    pattern: ast.Pattern, fresh: frozenset[str]
) -> dict[str, object]:
    """Map fresh variable -> its single pattern element, if eligible.

    Variable-length relationships are excluded (their variable binds a
    list, so ``r.k`` in WHERE means something else than a map on the
    pattern).  A variable appearing on several elements maps to its
    first occurrence; filtering there is equivalent since all
    occurrences bind the same entity.
    """
    elements: dict[str, object] = {}
    for path in pattern.paths:
        for element in path.elements:
            variable = element.variable
            if variable is None or variable not in fresh:
                continue
            if (
                isinstance(element, ast.RelationshipPattern)
                and element.is_var_length
            ):
                elements.pop(variable, None)
                fresh = fresh - {variable}
                continue
            elements.setdefault(variable, element)
    return elements


def _pushdown_target(
    conjunct: ast.Expression,
    elements: dict[str, object],
    pushed_keys: dict[str, set[str]],
    bound: frozenset[str],
    parameters: frozenset[str],
) -> Optional[tuple[str, str, ast.Expression]]:
    """``(variable, key, value)`` if *conjunct* is a pushable equality."""
    if not isinstance(conjunct, ast.Binary) or conjunct.operator != "=":
        return None
    for prop_side, value_side in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        if not isinstance(prop_side, ast.Property):
            continue
        if not isinstance(prop_side.subject, ast.Variable):
            continue
        variable = prop_side.subject.name
        element = elements.get(variable)
        if element is None:
            continue
        key = prop_side.key
        existing = element.properties.keys() if element.properties else ()
        if key in existing or key in pushed_keys.get(variable, ()):
            continue
        if not _safe_value(value_side, bound, parameters):
            continue
        return (variable, key, value_side)
    return None


def _safe_value(
    expression: ast.Expression,
    bound: frozenset[str],
    parameters: frozenset[str],
) -> bool:
    """True iff evaluating *expression* can never raise.

    Property maps evaluate once per record before enumeration, while a
    WHERE evaluates only on matches -- so only expressions that cannot
    fail may move: literals, variables bound by earlier clauses
    (present in every record), and parameters actually supplied.
    """
    if isinstance(expression, ast.Literal):
        return True
    if isinstance(expression, ast.Variable):
        return expression.name in bound
    if isinstance(expression, ast.Parameter):
        return expression.name in parameters
    return False


def _apply_pushes(
    pattern: ast.Pattern, pushes: list[tuple[str, str, ast.Expression]]
) -> ast.Pattern:
    extra: dict[str, list[tuple[str, ast.Expression]]] = {}
    for variable, key, value in pushes:
        extra.setdefault(variable, []).append((key, value))
    paths = []
    for path in pattern.paths:
        elements = []
        for element in path.elements:
            additions = (
                extra.pop(element.variable, None)
                if element.variable is not None
                else None
            )
            if additions:
                items = (
                    element.properties.items if element.properties else ()
                ) + tuple(additions)
                element = replace(
                    element, properties=ast.MapLiteral(items=items)
                )
            elements.append(element)
        paths.append(replace(path, elements=tuple(elements)))
    return replace(pattern, paths=tuple(paths))


# ---------------------------------------------------------------------------
# Common-subexpression hoisting
# ---------------------------------------------------------------------------

#: Node types never worth wrapping on their own: atoms are already
#: cheap, and parameters/variables are resolved by one dict lookup.
_ATOMS = (ast.Literal, ast.Parameter, ast.Variable)


def _hoist(
    expression: ast.Expression, bound: frozenset[str]
) -> ast.Expression:
    """Wrap maximal record-invariant pure subtrees in HoistedExpression.

    *bound* is unused for invariance (a record-invariant subtree has no
    free variables at all) but kept for signature symmetry with the
    pushdown pass.
    """
    del bound
    return _hoist_walk(expression, frozenset())


def _hoist_walk(
    expression: ast.Expression, scope: frozenset[str]
) -> ast.Expression:
    if isinstance(expression, (ast.HoistedExpression, *_ATOMS)):
        return expression
    if _invariant(expression, scope) and not isinstance(
        expression, ast.MapLiteral
    ):
        return ast.HoistedExpression(expression)
    return _rebuild(expression, scope)


def _rebuild(
    expression: ast.Expression, scope: frozenset[str]
) -> ast.Expression:
    """Recurse into children, honouring comprehension binders."""
    if isinstance(expression, ast.ListComprehension):
        inner = scope | {expression.variable}
        return _replace_if_changed(
            expression,
            source=_hoist_walk(expression.source, scope),
            predicate=(
                _hoist_walk(expression.predicate, inner)
                if expression.predicate is not None
                else None
            ),
            projection=(
                _hoist_walk(expression.projection, inner)
                if expression.projection is not None
                else None
            ),
        )
    if isinstance(expression, ast.Quantifier):
        return _replace_if_changed(
            expression,
            source=_hoist_walk(expression.source, scope),
            predicate=_hoist_walk(
                expression.predicate, scope | {expression.variable}
            ),
        )
    if isinstance(expression, ast.Reduce):
        inner = scope | {expression.accumulator, expression.variable}
        return _replace_if_changed(
            expression,
            init=_hoist_walk(expression.init, scope),
            source=_hoist_walk(expression.source, scope),
            expression=_hoist_walk(expression.expression, inner),
        )
    if isinstance(expression, (ast.PatternExpression, ast.ExistsExpression)):
        return expression
    if isinstance(expression, ast.Unary):
        return _replace_if_changed(
            expression, operand=_hoist_walk(expression.operand, scope)
        )
    if isinstance(expression, ast.Binary):
        return _replace_if_changed(
            expression,
            left=_hoist_walk(expression.left, scope),
            right=_hoist_walk(expression.right, scope),
        )
    if isinstance(expression, ast.Property):
        return _replace_if_changed(
            expression, subject=_hoist_walk(expression.subject, scope)
        )
    if isinstance(expression, ast.ListLiteral):
        return _replace_if_changed(
            expression,
            items=tuple(
                _hoist_walk(item, scope) for item in expression.items
            ),
        )
    if isinstance(expression, ast.MapLiteral):
        return _replace_if_changed(
            expression,
            items=tuple(
                (key, _hoist_walk(value, scope))
                for key, value in expression.items
            ),
        )
    if isinstance(expression, ast.FunctionCall):
        return _replace_if_changed(
            expression,
            args=tuple(
                _hoist_walk(arg, scope) for arg in expression.args
            ),
        )
    if isinstance(expression, ast.Subscript):
        return _replace_if_changed(
            expression,
            subject=_hoist_walk(expression.subject, scope),
            index=_hoist_walk(expression.index, scope),
        )
    if isinstance(expression, ast.Slice):
        return _replace_if_changed(
            expression,
            subject=_hoist_walk(expression.subject, scope),
            start=(
                _hoist_walk(expression.start, scope)
                if expression.start is not None
                else None
            ),
            end=(
                _hoist_walk(expression.end, scope)
                if expression.end is not None
                else None
            ),
        )
    if isinstance(expression, ast.CaseExpression):
        return _replace_if_changed(
            expression,
            operand=(
                _hoist_walk(expression.operand, scope)
                if expression.operand is not None
                else None
            ),
            alternatives=tuple(
                (_hoist_walk(when, scope), _hoist_walk(then, scope))
                for when, then in expression.alternatives
            ),
            default=(
                _hoist_walk(expression.default, scope)
                if expression.default is not None
                else None
            ),
        )
    return expression


def _replace_if_changed(expression, **fields):
    if all(
        getattr(expression, name) == value for name, value in fields.items()
    ):
        return expression
    return replace(expression, **fields)


def _invariant(expression: ast.Expression, scope: frozenset[str]) -> bool:
    """True iff *expression* is record-invariant and safe to memoize.

    No free variables outside the comprehension-local *scope*, no
    pattern predicates or ``exists`` (graph-dependent: the graph can
    change between clauses of one statement), and no aggregate calls.
    Everything else in the expression language -- operators and the
    function library -- is deterministic and graph-independent.
    """
    if isinstance(expression, ast.Variable):
        return expression.name in scope
    if isinstance(
        expression,
        (ast.PatternExpression, ast.ExistsExpression, ast.CountStar),
    ):
        return False
    if is_aggregate_call(expression):
        return False
    if isinstance(expression, ast.ListComprehension):
        inner = scope | {expression.variable}
        return (
            _invariant(expression.source, scope)
            and (
                expression.predicate is None
                or _invariant(expression.predicate, inner)
            )
            and (
                expression.projection is None
                or _invariant(expression.projection, inner)
            )
        )
    if isinstance(expression, ast.Quantifier):
        return _invariant(expression.source, scope) and _invariant(
            expression.predicate, scope | {expression.variable}
        )
    if isinstance(expression, ast.Reduce):
        inner = scope | {expression.accumulator, expression.variable}
        return (
            _invariant(expression.init, scope)
            and _invariant(expression.source, scope)
            and _invariant(expression.expression, inner)
        )
    return all(_invariant(child, scope) for child in children(expression))
