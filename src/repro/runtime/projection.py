"""RETURN and WITH: projection, implicit grouping, ordering.

Cypher has no GROUP BY clause; a projection that contains aggregate
calls groups implicitly by the values of its non-aggregate items.  The
processing order is: group/evaluate -> DISTINCT -> ORDER BY -> SKIP ->
LIMIT -> (for WITH) WHERE.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import CypherEvaluationError, CypherSemanticError
from repro.graph.values import grouping_key, sort_key
from repro.parser import ast
from repro.parser.unparse import unparse
from repro.runtime.aggregation import (
    AggregateAccumulator,
    children,
    contains_aggregate,
    is_aggregate_call,
)
from repro.runtime.compiler import compile_expression
from repro.runtime.context import EvalContext
from repro.runtime.expressions import evaluate
from repro.runtime.table import DrivingTable


def project_return(
    ctx: EvalContext, body: ast.ProjectionBody, table: DrivingTable
) -> DrivingTable:
    """Apply a RETURN body to the driving table."""
    return _project(ctx, body, table, require_aliases=False)


def project_with(
    ctx: EvalContext,
    body: ast.ProjectionBody,
    where: ast.Expression | None,
    table: DrivingTable,
) -> DrivingTable:
    """Apply a WITH body (and its optional WHERE) to the driving table."""
    result = _project(ctx, body, table, require_aliases=True)
    if where is not None:
        where_fn = compile_expression(where)
        result = result.filter(
            lambda record: where_fn(ctx, record) is True
        )
    return result


# ---------------------------------------------------------------------------

def _column_name(item: ast.ProjectionItem, require_alias: bool) -> str:
    if item.alias is not None:
        return item.alias
    if isinstance(item.expression, ast.Variable):
        return item.expression.name
    if require_alias:
        raise CypherSemanticError(
            f"WITH requires an alias for expression "
            f"'{unparse(item.expression)}'"
        )
    return unparse(item.expression)


def _expand_items(
    body: ast.ProjectionBody, table: DrivingTable, require_alias: bool
) -> list[tuple[str, ast.Expression]]:
    """Resolve ``*`` and aliases into an ordered (name, expr) list."""
    columns: list[tuple[str, ast.Expression]] = []
    if body.include_existing:
        if not table.columns:
            raise CypherSemanticError(
                "RETURN * is not allowed when there are no variables in scope"
            )
        for column in table.columns:
            columns.append((column, ast.Variable(column)))
    for item in body.items:
        name = _column_name(item, require_alias)
        if any(existing == name for existing, __ in columns):
            raise CypherSemanticError(f"duplicate column name '{name}'")
        columns.append((name, item.expression))
    if not columns:
        raise CypherSemanticError("empty projection")
    return columns


def _project(
    ctx: EvalContext,
    body: ast.ProjectionBody,
    table: DrivingTable,
    *,
    require_aliases: bool,
) -> DrivingTable:
    columns = _expand_items(body, table, require_aliases)
    aggregating = any(contains_aggregate(expr) for __, expr in columns)
    if aggregating:
        rows = _aggregate_rows(ctx, columns, table)
    else:
        column_fns = [
            (name, compile_expression(expr)) for name, expr in columns
        ]
        rows = [
            (
                {name: fn(ctx, record) for name, fn in column_fns},
                record,
            )
            for record in table
        ]
    output_columns = tuple(name for name, __ in columns)
    if body.distinct:
        rows = _distinct_rows(rows, output_columns)
    if body.order_by:
        rows = _order_rows(ctx, body.order_by, rows)
    rows = _skip_limit(ctx, body, rows)
    result = DrivingTable(output_columns)
    for output, __ in rows:
        result.add(output)
    return result


def _aggregate_rows(
    ctx: EvalContext,
    columns: list[tuple[str, ast.Expression]],
    table: DrivingTable,
) -> list[tuple[dict, dict]]:
    """Group by the non-aggregate items and fold the aggregates.

    Returns (output_record, representative_input_record) pairs; the
    representative record lets ORDER BY expressions still reference
    grouping variables.
    """
    grouping_items = [
        (name, expr) for name, expr in columns if not contains_aggregate(expr)
    ]
    aggregate_items = [
        (name, expr) for name, expr in columns if contains_aggregate(expr)
    ]
    # Aggregate nodes are discovered and their argument expressions
    # compiled once per clause; each record pays only the feeds.
    feeders = [
        (id(node), node, _compile_feeder(node))
        for __, expr in aggregate_items
        for node in _aggregate_nodes(expr)
    ]
    grouping_fns = [
        (name, compile_expression(expr)) for name, expr in grouping_items
    ]
    groups: dict[tuple, dict] = {}
    for record in table:
        grouping_values = {
            name: fn(ctx, record) for name, fn in grouping_fns
        }
        key = tuple(
            grouping_key(grouping_values[name]) for name, __ in grouping_items
        )
        group = groups.get(key)
        if group is None:
            group = {
                "values": grouping_values,
                "record": record,
                "accumulators": {
                    node_id: _make_accumulator(node)
                    for node_id, node, __ in feeders
                },
                "percentiles": {},
            }
            groups[key] = group
        accumulators = group["accumulators"]
        percentiles = group["percentiles"]
        for node_id, __, feed in feeders:
            feed(ctx, accumulators[node_id], percentiles, record)
    # An aggregation with no grouping items over an empty table still
    # produces one row (count(*) = 0, collect = [] ...).
    if not groups and not grouping_items:
        groups[()] = {
            "values": {},
            "record": {},
            "accumulators": {
                node_id: _make_accumulator(node)
                for node_id, node, __ in feeders
            },
            "percentiles": {},
        }
    rows: list[tuple[dict, dict]] = []
    for group in groups.values():
        output = dict(group["values"])
        substitutions = {
            node_id: accumulator.result(group["percentiles"].get(node_id))
            for node_id, accumulator in group["accumulators"].items()
        }
        for name, expr in aggregate_items:
            output[name] = _evaluate_substituted(
                ctx, expr, group["record"], substitutions
            )
        rows.append((output, group["record"]))
    return rows


def _aggregate_nodes(expression: ast.Expression) -> Iterable[ast.Expression]:
    """All aggregate call nodes in an expression tree (outermost only)."""
    if is_aggregate_call(expression):
        yield expression
        return
    for child in children(expression):
        yield from _aggregate_nodes(child)


def _make_accumulator(node: ast.Expression) -> AggregateAccumulator:
    if isinstance(node, ast.CountStar):
        return AggregateAccumulator("count(*)")
    assert isinstance(node, ast.FunctionCall)
    return AggregateAccumulator(node.name, distinct=node.distinct)


def _compile_feeder(node: ast.Expression):
    """A per-record feed closure ``(ctx, accumulator, percentiles, record)``.

    Argument expressions are compiled once here; arity problems still
    surface only when a record is actually fed (an aggregation over an
    empty ungrouped table never feeds), matching interpreter behaviour.
    """
    if isinstance(node, ast.CountStar):

        def feed_count_star(ctx, accumulator, percentiles, record) -> None:
            accumulator.add(None)

        return feed_count_star
    assert isinstance(node, ast.FunctionCall)
    if not node.args:
        message = f"aggregate {node.name}() requires an argument"

        def feed_missing_argument(
            ctx, accumulator, percentiles, record
        ) -> None:
            raise CypherEvaluationError(message)

        return feed_missing_argument
    value_fn = compile_expression(node.args[0])
    if node.name in ("percentiledisc", "percentilecont"):
        if len(node.args) != 2:
            message = f"{node.name}() expects 2 arguments"

            def feed_wrong_arity(
                ctx, accumulator, percentiles, record
            ) -> None:
                value_fn(ctx, record)
                raise CypherEvaluationError(message)

            return feed_wrong_arity
        node_id = id(node)
        percentile_fn = compile_expression(node.args[1])

        def feed_percentile(ctx, accumulator, percentiles, record) -> None:
            value = value_fn(ctx, record)
            percentiles[node_id] = percentile_fn(ctx, record)
            accumulator.add(value)

        return feed_percentile

    def feed(ctx, accumulator, percentiles, record) -> None:
        accumulator.add(value_fn(ctx, record))

    return feed


def _evaluate_substituted(
    ctx: EvalContext,
    expression: ast.Expression,
    record: Mapping[str, Any],
    substitutions: Mapping[int, Any],
) -> Any:
    """Evaluate an expression with aggregate sub-results plugged in."""
    if id(expression) in substitutions:
        return substitutions[id(expression)]
    if is_aggregate_call(expression):  # pragma: no cover - defensive
        raise CypherEvaluationError("unaccumulated aggregate")
    rebuilt = _substitute(expression, substitutions)
    return evaluate(ctx, rebuilt, record)


def _substitute(
    expression: ast.Expression, substitutions: Mapping[int, Any]
) -> ast.Expression:
    import dataclasses

    if id(expression) in substitutions:
        return ast.Literal(substitutions[id(expression)])
    if not dataclasses.is_dataclass(expression):
        return expression
    changes = {}
    for field in dataclasses.fields(expression):
        value = getattr(expression, field.name)
        if isinstance(value, ast.Expression):
            changes[field.name] = _substitute(value, substitutions)
        elif isinstance(value, tuple) and any(
            isinstance(item, ast.Expression) for item in value
        ):
            changes[field.name] = tuple(
                _substitute(item, substitutions)
                if isinstance(item, ast.Expression)
                else item
                for item in value
            )
    if changes:
        return dataclasses.replace(expression, **changes)
    return expression


def _distinct_rows(
    rows: list[tuple[dict, dict]], columns: tuple[str, ...]
) -> list[tuple[dict, dict]]:
    seen: set = set()
    result = []
    for output, record in rows:
        key = tuple(grouping_key(output[column]) for column in columns)
        if key not in seen:
            seen.add(key)
            result.append((output, record))
    return result


def _order_rows(
    ctx: EvalContext,
    order_by: tuple[ast.SortItem, ...],
    rows: list[tuple[dict, dict]],
) -> list[tuple[dict, dict]]:
    item_fns = [
        (compile_expression(item.expression), item.ascending)
        for item in order_by
    ]

    def key(row: tuple[dict, dict]) -> tuple:
        output, record = row
        # Sort expressions see the projected columns first, then any
        # still-unshadowed input variables.
        scope = {**record, **output}
        parts = []
        for item_fn, ascending in item_fns:
            item_key = sort_key(item_fn(ctx, scope))
            parts.append(item_key if ascending else _Reversed(item_key))
        return tuple(parts)

    return sorted(rows, key=key)


class _Reversed:
    """Inverts comparison for descending sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key


def _skip_limit(
    ctx: EvalContext,
    body: ast.ProjectionBody,
    rows: list[tuple[dict, dict]],
) -> list[tuple[dict, dict]]:
    if body.skip is not None:
        skip = evaluate(ctx, body.skip, {})
        if not isinstance(skip, int) or isinstance(skip, bool) or skip < 0:
            raise CypherEvaluationError("SKIP expects a non-negative integer")
        rows = rows[skip:]
    if body.limit is not None:
        limit = evaluate(ctx, body.limit, {})
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 0:
            raise CypherEvaluationError("LIMIT expects a non-negative integer")
        rows = rows[:limit]
    return rows
