"""Expression evaluation.

:func:`evaluate` implements ``[[e]]_{G,u}`` -- the value of expression
*e* on graph *G* under assignment *u* (the current record).  Semantics
follows the paper's companion formalization: SQL-style three-valued
logic, null propagation through operators and most functions, and
entity property access via iota (absent keys read as null).

Two implementations share this semantics:

* :func:`interpret` -- the original recursive AST walker, kept as the
  executable reference (``tests/properties`` checks the compiler
  against it form by form, including error cases);
* :func:`evaluate` -- a thin wrapper over
  :func:`repro.runtime.compiler.compile_expression`, which lowers the
  expression to nested closures once (memoized per AST node) and makes
  every subsequent evaluation a chain of direct calls.

The scalar operator implementations (:data:`BINARY_OPS`) are shared by
both, so there is exactly one definition of ``+`` on lists, IEEE zero
division, int64 overflow checking and friends.

Aggregates are *not* evaluated here: projections (RETURN/WITH) detect
and compute them; reaching one in this evaluator is an error.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

from repro.errors import (
    CypherEvaluationError,
    CypherTypeError,
    ParameterMissingError,
    UnknownVariableError,
)
from repro.graph.model import Node, Relationship
from repro.graph.values import (
    check_int64,
    cypher_eq,
    cypher_gt,
    cypher_gte,
    cypher_in,
    cypher_lt,
    cypher_lte,
    cypher_neq,
    is_number,
    tri_and,
    tri_not,
    tri_or,
    tri_xor,
    type_name,
)
from repro.parser import ast
from repro.runtime.aggregation import is_aggregate_call
from repro.runtime.context import EvalContext
from repro.runtime.functions import call_function


def evaluate(
    ctx: EvalContext, expression: ast.Expression, record: Mapping[str, Any]
) -> Any:
    """Evaluate *expression* on the graph under the given record.

    Delegates to the compiled closure for the expression (compiled once
    per distinct AST node, then cached); with compilation disabled
    (``compiler.compilation_disabled()``) this falls back to
    :func:`interpret`.
    """
    return compile_expression(expression)(ctx, record)


def evaluate_predicate(
    ctx: EvalContext, expression: ast.Expression, record: Mapping[str, Any]
) -> bool:
    """Evaluate a WHERE predicate; null counts as not satisfied."""
    return evaluate(ctx, expression, record) is True


def interpret(
    ctx: EvalContext, expression: ast.Expression, record: Mapping[str, Any]
) -> Any:
    """Reference interpreter: evaluate by walking the AST directly."""
    if isinstance(expression, ast.HoistedExpression):
        # The interpreter skips the memoization -- per-row evaluation of
        # a record-invariant expression is semantically identical.
        return interpret(ctx, expression.expression, record)
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Parameter):
        if expression.name not in ctx.parameters:
            raise ParameterMissingError(
                f"missing parameter ${expression.name}"
            )
        return ctx.parameters[expression.name]
    if isinstance(expression, ast.Variable):
        if expression.name not in record:
            raise UnknownVariableError(
                f"variable '{expression.name}' is not defined"
            )
        return record[expression.name]
    if isinstance(expression, ast.Property):
        return _property(ctx, expression, record)
    if isinstance(expression, ast.ListLiteral):
        return [interpret(ctx, item, record) for item in expression.items]
    if isinstance(expression, ast.MapLiteral):
        return {
            key: interpret(ctx, value, record)
            for key, value in expression.items
        }
    if isinstance(expression, ast.Unary):
        return _unary(ctx, expression, record)
    if isinstance(expression, ast.Binary):
        return _binary(ctx, expression, record)
    if isinstance(expression, ast.IsNull):
        value = interpret(ctx, expression.operand, record)
        return (value is not None) if expression.negated else (value is None)
    if isinstance(expression, ast.HasLabels):
        subject = interpret(ctx, expression.subject, record)
        if subject is None:
            return None
        if not isinstance(subject, Node):
            raise CypherTypeError(
                f"label predicate expects a Node, got {type_name(subject)}"
            )
        return all(subject.has_label(label) for label in expression.labels)
    if isinstance(expression, ast.FunctionCall):
        if is_aggregate_call(expression):
            raise CypherEvaluationError(
                f"aggregate {expression.name}() is only allowed in "
                f"RETURN and WITH projections"
            )
        args = [interpret(ctx, arg, record) for arg in expression.args]
        return call_function(ctx, expression.name, args)
    if isinstance(expression, ast.CountStar):
        raise CypherEvaluationError(
            "count(*) is only allowed in RETURN and WITH projections"
        )
    if isinstance(expression, ast.CaseExpression):
        return _case(ctx, expression, record)
    if isinstance(expression, ast.ListComprehension):
        return _list_comprehension(ctx, expression, record)
    if isinstance(expression, ast.Quantifier):
        return _quantifier(ctx, expression, record)
    if isinstance(expression, ast.Reduce):
        return _reduce(ctx, expression, record)
    if isinstance(expression, ast.Subscript):
        return _subscript(ctx, expression, record)
    if isinstance(expression, ast.Slice):
        return _slice(ctx, expression, record)
    if isinstance(expression, ast.PatternExpression):
        return pattern_predicate(ctx, expression.pattern, record)
    if isinstance(expression, ast.ExistsExpression):
        if isinstance(expression.argument, ast.PathPattern):
            return pattern_predicate(ctx, expression.argument, record)
        return interpret(ctx, expression.argument, record) is not None
    raise CypherEvaluationError(
        f"cannot evaluate expression {type(expression).__name__}"
    )


# ---------------------------------------------------------------------------

def _property(
    ctx: EvalContext, expression: ast.Property, record: Mapping[str, Any]
) -> Any:
    subject = interpret(ctx, expression.subject, record)
    if subject is None:
        return None
    if isinstance(subject, (Node, Relationship)):
        return subject.get(expression.key)
    if isinstance(subject, dict):
        return subject.get(expression.key)
    raise CypherTypeError(
        f"cannot read property '{expression.key}' of {type_name(subject)}"
    )


def _unary(
    ctx: EvalContext, expression: ast.Unary, record: Mapping[str, Any]
) -> Any:
    value = interpret(ctx, expression.operand, record)
    return UNARY_OPS[expression.operator](value)


def unary_not(value: Any) -> Any:
    """``NOT e`` under three-valued logic."""
    return tri_not(value)


def unary_minus(value: Any) -> Any:
    """Numeric negation with int64 overflow checking."""
    if value is None:
        return None
    if not is_number(value):
        raise CypherTypeError(
            f"unary - expects a number, got {type_name(value)}"
        )
    if isinstance(value, int):
        return check_int64(-value, "unary -")
    return -value


def unary_plus(value: Any) -> Any:
    """Numeric identity (type-checks its operand)."""
    if value is None:
        return None
    if not is_number(value):
        raise CypherTypeError(
            f"unary + expects a number, got {type_name(value)}"
        )
    return value


#: Unary operator implementations shared by interpreter and compiler.
UNARY_OPS: dict[str, Callable[[Any], Any]] = {
    "NOT": unary_not,
    "-": unary_minus,
    "+": unary_plus,
}


def _binary(
    ctx: EvalContext, expression: ast.Binary, record: Mapping[str, Any]
) -> Any:
    operator = expression.operator
    # Boolean connectives do not short-circuit on nulls, but we can
    # still evaluate lazily on definite outcomes.
    if operator in ("AND", "OR", "XOR"):
        left = interpret(ctx, expression.left, record)
        right = interpret(ctx, expression.right, record)
        if operator == "AND":
            return tri_and(left, right)
        if operator == "OR":
            return tri_or(left, right)
        return tri_xor(left, right)
    left = interpret(ctx, expression.left, record)
    right = interpret(ctx, expression.right, record)
    op = BINARY_OPS.get(operator)
    if op is None:
        raise CypherEvaluationError(f"unknown operator {operator}")
    return op(left, right)


def _string_op(operator: str, impl: Callable[[str, str], bool]):
    def string_predicate(left: Any, right: Any) -> Any:
        if left is None or right is None:
            return None
        if not isinstance(left, str) or not isinstance(right, str):
            raise CypherTypeError(
                f"{operator} expects Strings, got "
                f"{type_name(left)} and {type_name(right)}"
            )
        return impl(left, right)

    string_predicate.__name__ = f"op_{operator.lower().replace(' ', '_')}"
    return string_predicate


def _require_numbers(operator: str, left: Any, right: Any) -> None:
    if not is_number(left) or not is_number(right):
        raise CypherTypeError(
            f"operator {operator} expects numbers, got "
            f"{type_name(left)} and {type_name(right)}"
        )


def op_add(left: Any, right: Any) -> Any:
    """``+`` on numbers, strings and lists (with null propagation)."""
    if left is None or right is None:
        return None
    if isinstance(left, list):
        return left + (right if isinstance(right, list) else [right])
    if isinstance(right, list):
        return [left] + right
    if isinstance(left, str) or isinstance(right, str):
        return _concat(left, right)
    _require_numbers("+", left, right)
    result = left + right
    if isinstance(left, int) and isinstance(right, int):
        return check_int64(result, "+")
    return result


def op_subtract(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    _require_numbers("-", left, right)
    result = left - right
    if isinstance(left, int) and isinstance(right, int):
        return check_int64(result, "-")
    return result


def op_multiply(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    _require_numbers("*", left, right)
    result = left * right
    if isinstance(left, int) and isinstance(right, int):
        return check_int64(result, "*")
    return result


def op_divide(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    _require_numbers("/", left, right)
    if isinstance(left, int) and isinstance(right, int):
        if right == 0:
            raise CypherEvaluationError("division by zero")
        # Truncating (toward-zero) integer division, computed
        # exactly -- ``int(left / right)`` loses precision above
        # 2**53.  INT64_MIN / -1 overflows the Integer domain.
        quotient = abs(left) // abs(right)
        if (left >= 0) != (right >= 0):
            quotient = -quotient
        return check_int64(quotient, "/")
    return _float_divide(float(left), float(right))


def op_modulo(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    _require_numbers("%", left, right)
    if isinstance(left, int) and isinstance(right, int):
        if right == 0:
            raise CypherEvaluationError("modulo by zero")
        result = abs(left) % abs(right)
        return result if left >= 0 else -result
    return _float_modulo(float(left), float(right))


def op_power(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    _require_numbers("^", left, right)
    base = float(left)
    exponent = float(right)
    try:
        result = base ** exponent
    except OverflowError:
        # IEEE-754 pow saturates to infinity (Java Math.pow, which
        # Cypher's ^ follows); CPython raises instead.  The result is
        # negative only for a negative base raised to an odd integer.
        negative = (
            base < 0
            and exponent == exponent  # not NaN
            and abs(exponent) != float("inf")
            and exponent == int(exponent)
            and int(exponent) % 2 == 1
        )
        return float("-inf") if negative else float("inf")
    if isinstance(result, complex):
        # Negative base with a fractional exponent: IEEE pow says NaN.
        return float("nan")
    return result


#: Non-boolean binary operator implementations, shared by interpreter
#: and compiler.  Boolean connectives (AND/OR/XOR) are handled apart
#: because the compiler folds them differently.
BINARY_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "=": cypher_eq,
    "<>": cypher_neq,
    "<": cypher_lt,
    "<=": cypher_lte,
    ">": cypher_gt,
    ">=": cypher_gte,
    "IN": cypher_in,
    "STARTS WITH": _string_op("STARTS WITH", str.startswith),
    "ENDS WITH": _string_op("ENDS WITH", str.endswith),
    "CONTAINS": _string_op("CONTAINS", lambda left, right: right in left),
    "+": op_add,
    "-": op_subtract,
    "*": op_multiply,
    "/": op_divide,
    "%": op_modulo,
    "^": op_power,
}

#: Boolean connective implementations (three-valued logic).
BOOLEAN_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "AND": tri_and,
    "OR": tri_or,
    "XOR": tri_xor,
}


def _float_divide(left: float, right: float) -> float:
    """Float ``/`` with IEEE 754 zero-divisor semantics.

    Python raises ``ZeroDivisionError`` even for floats; Cypher (like
    IEEE arithmetic) yields ``±Infinity`` for a nonzero dividend and
    ``NaN`` for ``0.0 / 0.0``, honouring the sign of a signed zero.
    """
    if right != 0.0:
        return left / right
    if left == 0.0 or math.isnan(left):
        return math.nan
    sign = math.copysign(1.0, left) * math.copysign(1.0, right)
    return math.copysign(math.inf, sign)


def _float_modulo(left: float, right: float) -> float:
    """Float ``%`` as IEEE ``fmod``: dividend-signed, ``NaN`` on zero.

    ``math.fmod`` raises on the domain edges Python dislikes (zero
    divisor, infinite dividend) where IEEE says ``NaN``.
    """
    if right == 0.0 or math.isinf(left) or math.isnan(right):
        return math.nan
    if math.isinf(right):
        return left  # fmod(x, inf) = x for finite x
    return math.fmod(left, right)


def _concat(left: Any, right: Any) -> str:
    def text(value: Any) -> str:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if is_number(value):
            return str(value)
        raise CypherTypeError(
            f"cannot concatenate {type_name(value)} with a String"
        )

    return text(left) + text(right)


def _case(
    ctx: EvalContext, expression: ast.CaseExpression, record: Mapping[str, Any]
) -> Any:
    if expression.operand is not None:
        operand = interpret(ctx, expression.operand, record)
        for condition, result in expression.alternatives:
            if cypher_eq(operand, interpret(ctx, condition, record)) is True:
                return interpret(ctx, result, record)
    else:
        for condition, result in expression.alternatives:
            if interpret(ctx, condition, record) is True:
                return interpret(ctx, result, record)
    if expression.default is not None:
        return interpret(ctx, expression.default, record)
    return None


def _list_comprehension(
    ctx: EvalContext,
    expression: ast.ListComprehension,
    record: Mapping[str, Any],
) -> Any:
    source = interpret(ctx, expression.source, record)
    if source is None:
        return None
    if not isinstance(source, list):
        raise CypherTypeError(
            f"list comprehension expects a List, got {type_name(source)}"
        )
    result = []
    inner = dict(record)
    for element in source:
        inner[expression.variable] = element
        if expression.predicate is not None:
            if interpret(ctx, expression.predicate, inner) is not True:
                continue
        if expression.projection is not None:
            result.append(interpret(ctx, expression.projection, inner))
        else:
            result.append(element)
    return result


def _reduce(
    ctx: EvalContext, expression: ast.Reduce, record: Mapping[str, Any]
) -> Any:
    source = interpret(ctx, expression.source, record)
    if source is None:
        return None
    if not isinstance(source, list):
        raise CypherTypeError(
            f"reduce() expects a List, got {type_name(source)}"
        )
    accumulator = interpret(ctx, expression.init, record)
    inner = dict(record)
    for element in source:
        inner[expression.accumulator] = accumulator
        inner[expression.variable] = element
        accumulator = interpret(ctx, expression.expression, inner)
    return accumulator


def quantifier_outcome(
    kind: str, true_count: int, null_count: int, false_count: int
) -> Any:
    """The three-valued verdict of an any/all/none/single quantifier."""
    if kind == "any":
        if true_count:
            return True
        return None if null_count else False
    if kind == "all":
        if false_count:
            return False
        return None if null_count else True
    if kind == "none":
        if true_count:
            return False
        return None if null_count else True
    if kind == "single":
        if true_count > 1:
            return False
        if null_count:
            return None
        return true_count == 1
    raise AssertionError(kind)


def _quantifier(
    ctx: EvalContext, expression: ast.Quantifier, record: Mapping[str, Any]
) -> Any:
    source = interpret(ctx, expression.source, record)
    if source is None:
        return None
    if not isinstance(source, list):
        raise CypherTypeError(
            f"{expression.kind}() expects a List, got {type_name(source)}"
        )
    true_count = 0
    null_count = 0
    inner = dict(record)
    for element in source:
        inner[expression.variable] = element
        outcome = interpret(ctx, expression.predicate, inner)
        if outcome is True:
            true_count += 1
        elif outcome is None:
            null_count += 1
    false_count = len(source) - true_count - null_count
    return quantifier_outcome(
        expression.kind, true_count, null_count, false_count
    )


def subscript_value(subject: Any, index: Any) -> Any:
    """``subject[index]`` on lists, maps and entities."""
    if subject is None or index is None:
        return None
    if isinstance(subject, list):
        if not isinstance(index, int) or isinstance(index, bool):
            raise CypherTypeError(
                f"list index must be an Integer, got {type_name(index)}"
            )
        if -len(subject) <= index < len(subject):
            return subject[index]
        return None
    if isinstance(subject, (dict, Node, Relationship)):
        if not isinstance(index, str):
            raise CypherTypeError(
                f"map key must be a String, got {type_name(index)}"
            )
        return subject.get(index)
    raise CypherTypeError(f"cannot index into {type_name(subject)}")


def _subscript(
    ctx: EvalContext, expression: ast.Subscript, record: Mapping[str, Any]
) -> Any:
    subject = interpret(ctx, expression.subject, record)
    index = interpret(ctx, expression.index, record)
    return subscript_value(subject, index)


def slice_value(subject: Any, start: Any, end: Any) -> Any:
    """``subject[start..end]`` on lists (bounds already evaluated)."""
    if start is None or end is None:
        return None
    for bound in (start, end):
        if not isinstance(bound, int) or isinstance(bound, bool):
            raise CypherTypeError("slice bounds must be Integers")
    return subject[start:end]


def _slice(
    ctx: EvalContext, expression: ast.Slice, record: Mapping[str, Any]
) -> Any:
    subject = interpret(ctx, expression.subject, record)
    if subject is None:
        return None
    if not isinstance(subject, list):
        raise CypherTypeError(f"cannot slice {type_name(subject)}")
    start = (
        interpret(ctx, expression.start, record)
        if expression.start is not None
        else 0
    )
    end = (
        interpret(ctx, expression.end, record)
        if expression.end is not None
        else len(subject)
    )
    return slice_value(subject, start, end)


def pattern_predicate(
    ctx: EvalContext, pattern: ast.PathPattern, record: Mapping[str, Any]
) -> bool:
    """True iff the path pattern has at least one match from *record*."""
    from repro.runtime.matcher import match_paths  # circular-import guard

    stripped = _strip_unbound_variables(pattern, record)
    for __ in match_paths(ctx, (stripped,), record):
        return True
    return False


def _strip_unbound_variables(
    pattern: ast.PathPattern, record: Mapping[str, Any]
) -> ast.PathPattern:
    """Make pattern variables not bound in *record* anonymous.

    In a pattern *predicate*, unbound variables are existentially
    quantified rather than binding new columns.
    """
    elements = []
    for element in pattern.elements:
        variable = element.variable
        if variable is not None and variable not in record:
            element = dataclasses_replace(element, variable=None)
        elements.append(element)
    return ast.PathPattern(variable=None, elements=tuple(elements))


def dataclasses_replace(node, **changes):
    """dataclasses.replace, renamed to avoid shadowing the module."""
    import dataclasses

    return dataclasses.replace(node, **changes)


# The compiler imports the operator tables above; importing it last
# keeps the dependency acyclic regardless of which module loads first.
from repro.runtime.compiler import compile_expression  # noqa: E402
