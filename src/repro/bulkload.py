"""Offline bulk loader: ``python -m repro.bulkload``.

The statement pipeline (parse, plan, journal, WAL) is the right path
for transactional updates, but the dominant survey workload -- "input
nodes first and relationships later" from relational/CSV exports --
does not need any of it: the data is already validated, ids are
already assigned, and nothing ever rolls back.  This loader streams a
nodes-file + relationships-file pair straight into the columnar store
(:meth:`~repro.graph.store.GraphStore.bulk_load`: no journal entries,
no commit hooks, no per-statement marks), builds the requested
label/property indexes and uniqueness constraints in one offline pass,
verifies the store invariants, and emits an atomic checkpoint (plus an
empty WAL) that ``Graph.open`` / ``python -m repro.server`` open
directly with a clean recovery report.

Input formats (``--format``):

* ``csv`` -- the :func:`repro.io.csv_io.write_graph_csv` interchange
  shape: nodes as ``id,labels,properties`` (labels ``;``-joined,
  properties a JSON cell) and relationships as
  ``id,type,start,end,properties``;
* ``jsonl`` -- one JSON object per line: nodes
  ``{"id": 0, "labels": [...], "properties": {...}}``, relationships
  ``{"id": 0, "type": "T", "start": 0, "end": 1, "properties": {...}}``.

``--synthetic N`` first materialises a deterministic N-node social-ish
graph as real CSV files (so the run exercises the exact production
path) and then loads them; it backs the CI smoke job and the P8
scaling experiment.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Iterator

from repro.errors import LoadError, PersistenceError
from repro.graph.store import GraphStore
from repro.io.csv_io import write_csv
from repro.persistence.checkpoint import WAL_NAME, write_checkpoint

NodeRow = tuple[int, "tuple[str, ...] | list[str]", dict[str, Any]]
RelRow = tuple[int, str, int, int, dict[str, Any]]


# ----------------------------------------------------------------------
# Streaming readers
# ----------------------------------------------------------------------


#: shared sentinel for rows with no properties -- bulk_load only reads
#: property maps (falsy means "no dict allocated"), so sharing is safe
_NO_PROPERTIES: dict[str, Any] = {}

#: JSONDecoder.raw_decode skips json.loads' wrapper and its two regex
#: whitespace scans -- roughly 2.5x faster on the small property
#: objects a bulk load parses millions of
_RAW_DECODE = json.JSONDecoder().raw_decode

#: property cells repeat heavily in real exports (empty maps, enum-ish
#: payloads); cache parsed results up to this many distinct cells
_PROPS_CACHE_LIMIT = 8192


def _parse_properties(
    cell: str | None, path: Path, line: int
) -> dict[str, Any]:
    if not cell or cell == "{}":
        return _NO_PROPERTIES
    try:
        properties, end = _RAW_DECODE(cell)
        if end != len(cell) and cell[end:].strip():
            raise ValueError("trailing data")
    except ValueError:
        # Slow path: tolerate surrounding whitespace exactly like
        # json.loads, and reuse its error message for real failures.
        try:
            properties = json.loads(cell)
        except ValueError as error:
            raise LoadError(
                f"{path}:{line}: invalid properties JSON"
            ) from error
    if not isinstance(properties, dict):
        raise LoadError(
            f"{path}:{line}: properties must be a JSON object, got "
            f"{type(properties).__name__}"
        )
    return properties


def _parse_int(cell: str | None, column: str, where: str) -> int:
    try:
        return int(cell)  # type: ignore[arg-type]
    except (TypeError, ValueError) as error:
        raise LoadError(f"{where}: non-integer {column} {cell!r}") from error


def _csv_positions(
    path: Path, header: list[str] | None, columns: tuple[str, ...]
) -> list[int]:
    """Cell index of each requested column, validated once."""
    if header is None:
        raise LoadError(f"{path} has no header row")
    positions = []
    for column in columns:
        if column not in header:
            raise LoadError(
                f"{path}: missing column {column!r} in header {header}"
            )
        positions.append(header.index(column))
    return positions


def iter_nodes_csv(path: Path, delimiter: str = ",") -> Iterator[NodeRow]:
    """Stream ``(id, labels, properties)`` from a nodes CSV.

    Yielded label tuples and property dicts may be shared between rows
    whose cells are identical -- consumers must treat them as
    read-only (``GraphStore.bulk_load`` copies properties into pooled
    per-entity dicts).
    """
    import csv

    #: labels cell -> parsed tuple (tiny label vocabulary, hot loop)
    label_cache: dict[str, tuple[str, ...]] = {}
    #: properties cell -> parsed dict, bounded; repeats skip the parse
    props_cache: dict[str, dict[str, Any]] = {
        "": _NO_PROPERTIES, "{}": _NO_PROPERTIES
    }
    try:
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            id_at, labels_at, props_at = _csv_positions(
                path, next(reader, None), ("id", "labels", "properties")
            )
            for line, row in enumerate(reader, start=2):
                try:
                    node_id = int(row[id_at])
                    labels_cell = row[labels_at]
                    props_cell = row[props_at]
                except (IndexError, ValueError) as error:
                    raise LoadError(
                        f"{path}:{line}: malformed node row {row!r}"
                    ) from error
                labels = label_cache.get(labels_cell)
                if labels is None:
                    labels = label_cache[labels_cell] = tuple(
                        label for label in labels_cell.split(";") if label
                    )
                properties = props_cache.get(props_cell)
                if properties is None:
                    properties = _parse_properties(props_cell, path, line)
                    if len(props_cache) < _PROPS_CACHE_LIMIT:
                        props_cache[props_cell] = properties
                yield (node_id, labels, properties)
    except OSError as error:
        raise LoadError(f"cannot read CSV file {path}: {error}") from error


def iter_rels_csv(path: Path, delimiter: str = ",") -> Iterator[RelRow]:
    """Stream ``(id, type, start, end, properties)`` from a rels CSV.

    As with :func:`iter_nodes_csv`, yielded property dicts may be
    shared between rows with identical cells: treat them as read-only.
    """
    import csv

    props_cache: dict[str, dict[str, Any]] = {
        "": _NO_PROPERTIES, "{}": _NO_PROPERTIES
    }
    try:
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            id_at, type_at, start_at, end_at, props_at = _csv_positions(
                path,
                next(reader, None),
                ("id", "type", "start", "end", "properties"),
            )
            for line, row in enumerate(reader, start=2):
                try:
                    rel_id = int(row[id_at])
                    rel_type = row[type_at]
                    start = int(row[start_at])
                    end = int(row[end_at])
                    props_cell = row[props_at]
                except (IndexError, ValueError) as error:
                    raise LoadError(
                        f"{path}:{line}: malformed relationship row {row!r}"
                    ) from error
                if not rel_type:
                    raise LoadError(
                        f"{path}:{line}: relationship has no type"
                    )
                properties = props_cache.get(props_cell)
                if properties is None:
                    properties = _parse_properties(props_cell, path, line)
                    if len(props_cache) < _PROPS_CACHE_LIMIT:
                        props_cache[props_cell] = properties
                yield (rel_id, rel_type, start, end, properties)
    except OSError as error:
        raise LoadError(f"cannot read CSV file {path}: {error}") from error


# ----------------------------------------------------------------------
# Parallel CSV parsing (fork-based, opt-in via --parallel)
# ----------------------------------------------------------------------

#: State handed to forked workers by inheritance rather than pickling
#: (the same idiom as :mod:`repro.runtime.parallel`): set immediately
#: before the pool forks, cleared after; workers receive a chunk index.
_FORK_STATE: tuple | None = None

#: target bytes per parallel chunk; small files fall back to serial
_CHUNK_BYTES = 8 << 20


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _csv_header_positions(
    path: Path, delimiter: str, columns: tuple[str, ...]
) -> tuple[list[int], int]:
    """Column positions plus the byte offset where data rows start."""
    import csv
    import io

    with open(path, "rb") as handle:
        header_bytes = handle.readline()
        data_start = handle.tell()
    header_row = next(
        csv.reader(
            io.StringIO(header_bytes.decode("utf-8")), delimiter=delimiter
        ),
        None,
    )
    return _csv_positions(path, header_row, columns), data_start


def _chunk_ranges(
    path: Path, data_start: int, chunk_bytes: int
) -> list[tuple[int, int]]:
    """Newline-aligned ``(start, end)`` byte ranges covering the data.

    Ranges never split a physical line; they *can* split a quoted cell
    containing an embedded newline, which the interchange format never
    produces (property cells are JSON, which escapes newlines) and
    which the per-row validation in the workers catches loudly.
    """
    import os as _os

    size = _os.path.getsize(path)
    ranges: list[tuple[int, int]] = []
    offset = data_start
    with open(path, "rb") as handle:
        while offset < size:
            end = min(offset + chunk_bytes, size)
            if end < size:
                handle.seek(end)
                handle.readline()
                end = handle.tell()
            ranges.append((offset, end))
            offset = end
    return ranges


def _parse_csv_rows(
    kind: str,
    text: str,
    delimiter: str,
    positions: list[int],
    where: str,
) -> list:
    """Parse one decoded chunk; shared by workers and the fallback."""
    import csv
    import io

    label_cache: dict[str, tuple[str, ...]] = {}
    props_cache: dict[str, dict[str, Any]] = {
        "": _NO_PROPERTIES, "{}": _NO_PROPERTIES
    }
    rows: list = []
    path = Path(where)
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    if kind == "nodes":
        id_at, labels_at, props_at = positions
        for number, row in enumerate(reader, start=1):
            try:
                node_id = int(row[id_at])
                labels_cell = row[labels_at]
                props_cell = row[props_at]
            except (IndexError, ValueError) as error:
                raise LoadError(
                    f"{where}: malformed node row {number} in parallel "
                    f"chunk: {row!r} (if cells contain embedded "
                    "newlines, load without --parallel)"
                ) from error
            labels = label_cache.get(labels_cell)
            if labels is None:
                labels = label_cache[labels_cell] = tuple(
                    label for label in labels_cell.split(";") if label
                )
            properties = props_cache.get(props_cell)
            if properties is None:
                properties = _parse_properties(props_cell, path, number)
                if len(props_cache) < _PROPS_CACHE_LIMIT:
                    props_cache[props_cell] = properties
            rows.append((node_id, labels, properties))
    else:
        id_at, type_at, start_at, end_at, props_at = positions
        for number, row in enumerate(reader, start=1):
            try:
                rel_id = int(row[id_at])
                rel_type = row[type_at]
                start = int(row[start_at])
                end = int(row[end_at])
                props_cell = row[props_at]
            except (IndexError, ValueError) as error:
                raise LoadError(
                    f"{where}: malformed relationship row {number} in "
                    f"parallel chunk: {row!r} (if cells contain embedded "
                    "newlines, load without --parallel)"
                ) from error
            if not rel_type:
                raise LoadError(
                    f"{where}: relationship row {number} has no type"
                )
            properties = props_cache.get(props_cell)
            if properties is None:
                properties = _parse_properties(props_cell, path, number)
                if len(props_cache) < _PROPS_CACHE_LIMIT:
                    props_cache[props_cell] = properties
            rows.append((rel_id, rel_type, start, end, properties))
    return rows


def _parse_csv_chunk(index: int) -> list:
    """Worker-side chunk parser (executes in a forked child)."""
    kind, path, delimiter, positions, ranges = _FORK_STATE
    start, end = ranges[index]
    with open(path, "rb") as handle:
        handle.seek(start)
        data = handle.read(end - start)
    return _parse_csv_rows(
        kind,
        data.decode("utf-8"),
        delimiter,
        positions,
        f"{path} (bytes {start}-{end})",
    )


def _iter_csv_parallel(
    kind: str,
    columns: tuple[str, ...],
    path: Path,
    delimiter: str,
    workers: int,
    chunk_bytes: int,
) -> Iterator:
    import multiprocessing

    global _FORK_STATE
    try:
        positions, data_start = _csv_header_positions(
            path, delimiter, columns
        )
        ranges = _chunk_ranges(path, data_start, chunk_bytes)
    except OSError as error:
        raise LoadError(f"cannot read CSV file {path}: {error}") from error
    if len(ranges) <= 1 or workers <= 1 or not _fork_available():
        # Too small to split (or no fork): one serial pass, no pool.
        serial = iter_nodes_csv if kind == "nodes" else iter_rels_csv
        yield from serial(path, delimiter)
        return
    _FORK_STATE = (kind, str(path), delimiter, positions, ranges)
    try:
        with multiprocessing.get_context("fork").Pool(workers) as pool:
            # imap (not map): chunks stream back in file order as each
            # finishes, so peak memory is a few chunks, not the file.
            for rows in pool.imap(_parse_csv_chunk, range(len(ranges))):
                yield from rows
    finally:
        _FORK_STATE = None


def iter_nodes_csv_parallel(
    path: Path,
    delimiter: str = ",",
    *,
    workers: int = 2,
    chunk_bytes: int = _CHUNK_BYTES,
) -> Iterator[NodeRow]:
    """Parallel :func:`iter_nodes_csv`: forked workers parse newline-
    aligned chunks, rows stream back in file order.  Falls back to the
    serial reader when the file is one chunk or fork is unavailable.
    """
    return _iter_csv_parallel(
        "nodes",
        ("id", "labels", "properties"),
        Path(path),
        delimiter,
        workers,
        chunk_bytes,
    )


def iter_rels_csv_parallel(
    path: Path,
    delimiter: str = ",",
    *,
    workers: int = 2,
    chunk_bytes: int = _CHUNK_BYTES,
) -> Iterator[RelRow]:
    """Parallel :func:`iter_rels_csv`; see :func:`iter_nodes_csv_parallel`."""
    return _iter_csv_parallel(
        "rels",
        ("id", "type", "start", "end", "properties"),
        Path(path),
        delimiter,
        workers,
        chunk_bytes,
    )


def _jsonl_objects(path: Path) -> Iterator[tuple[str, dict]]:
    try:
        with open(path, encoding="utf-8") as handle:
            for line, text in enumerate(handle, start=1):
                text = text.strip()
                if not text:
                    continue
                where = f"{path}:{line}"
                try:
                    record = json.loads(text)
                except ValueError as error:
                    raise LoadError(f"{where}: invalid JSON") from error
                if not isinstance(record, dict):
                    raise LoadError(f"{where}: expected a JSON object")
                yield where, record
    except OSError as error:
        raise LoadError(f"cannot read JSONL file {path}: {error}") from error


def iter_nodes_jsonl(path: Path) -> Iterator[NodeRow]:
    """Stream ``(id, labels, properties)`` from a nodes JSONL file."""
    for where, record in _jsonl_objects(path):
        if "id" not in record:
            raise LoadError(f"{where}: node record has no id")
        yield (
            _parse_int(record["id"], "id", where),
            list(record.get("labels") or ()),
            dict(record.get("properties") or {}),
        )


def iter_rels_jsonl(path: Path) -> Iterator[RelRow]:
    """Stream ``(id, type, start, end, properties)`` from a JSONL file."""
    for where, record in _jsonl_objects(path):
        for column in ("id", "type", "start", "end"):
            if column not in record:
                raise LoadError(
                    f"{where}: relationship record has no {column}"
                )
        yield (
            _parse_int(record["id"], "id", where),
            str(record["type"]),
            _parse_int(record["start"], "start", where),
            _parse_int(record["end"], "end", where),
            dict(record.get("properties") or {}),
        )


# ----------------------------------------------------------------------
# Synthetic data (CI smoke, scaling experiments)
# ----------------------------------------------------------------------


def write_synthetic_csv(
    directory: Path | str,
    node_count: int,
    *,
    rels_per_node: int = 2,
    seed: int = 0,
) -> tuple[Path, Path]:
    """Write a deterministic synthetic graph as a CSV pair.

    A social-ish shape: every node is ``:Person {id, name}``, every
    tenth also ``:Admin``; each node gets ``rels_per_node`` outgoing
    ``:KNOWS`` relationships to pseudo-random earlier nodes (so the
    file can be streamed nodes-first) plus a ``:FOLLOWS`` ring edge.
    Returns ``(nodes_path, rels_path)``.
    """
    import random

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    nodes_path = directory / "nodes.csv"
    rels_path = directory / "rels.csv"
    rng = random.Random(seed)

    def node_rows():
        for node_id in range(node_count):
            labels = "Person;Admin" if node_id % 10 == 0 else "Person"
            properties = json.dumps(
                {"id": node_id, "name": f"p{node_id}"}, sort_keys=True
            )
            yield node_id, labels, properties

    def rel_rows():
        rel_id = 0
        for node_id in range(node_count):
            yield (
                rel_id,
                "FOLLOWS",
                node_id,
                (node_id + 1) % node_count,
                "{}",
            )
            rel_id += 1
            for __ in range(rels_per_node - 1):
                target = rng.randrange(node_count)
                yield (
                    rel_id,
                    "KNOWS",
                    node_id,
                    target,
                    json.dumps({"w": rng.randrange(100)}),
                )
                rel_id += 1

    write_csv(nodes_path, ("id", "labels", "properties"), node_rows())
    write_csv(
        rels_path, ("id", "type", "start", "end", "properties"), rel_rows()
    )
    return nodes_path, rels_path


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


def load_store(
    nodes: Iterator[NodeRow] | None,
    relationships: Iterator[RelRow] | None,
    *,
    indexes: list[tuple[str, str]] = (),
    constraints: list[tuple[str, str]] = (),
) -> GraphStore:
    """Stream rows into a fresh columnar store; build indexes after.

    The cyclic garbage collector is paused for the duration: a bulk
    load allocates millions of dicts and never creates cycles, and
    letting every generation-0 sweep rescan the growing columns costs
    ~10-15% of the load at the million-node scale.
    """
    import gc

    store = GraphStore()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        store.bulk_load(nodes or iter(()), relationships or iter(()))
        for label, key in indexes:
            store.create_index(label, key)
        for label, key in constraints:
            store.create_unique_constraint(label, key)
    finally:
        if was_enabled:
            gc.enable()
    return store


def emit_checkpoint(directory: Path | str, store: GraphStore) -> Path:
    """Write the loaded store as checkpoint + empty WAL.

    The pair is exactly what :class:`PersistenceManager` leaves behind
    after a clean checkpoint, so ``Graph.open(directory)`` recovers
    with zero replayed records and attaches its WAL writer on top.
    """
    directory = Path(directory)
    path = write_checkpoint(directory, store, 0)
    wal_path = directory / WAL_NAME
    if not wal_path.exists():
        open(wal_path, "wb").close()
    return path


def _parse_schema_pairs(
    pairs: list[str], option: str
) -> list[tuple[str, str]]:
    parsed = []
    for pair in pairs:
        label, sep, key = pair.partition(":")
        if not sep or not label or not key:
            raise LoadError(
                f"{option} expects LABEL:KEY, got {pair!r}"
            )
        parsed.append((label, key))
    return parsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bulkload",
        description="Bulk-load CSV/JSONL into a checkpointed graph, "
        "bypassing the statement pipeline.",
    )
    parser.add_argument("--nodes", help="nodes file (CSV or JSONL)")
    parser.add_argument("--rels", help="relationships file (CSV or JSONL)")
    parser.add_argument(
        "--out",
        required=True,
        help="persistence directory to write (checkpoint.json + wal.log)",
    )
    parser.add_argument(
        "--format",
        choices=("csv", "jsonl"),
        default="csv",
        help="input format (default: csv)",
    )
    parser.add_argument(
        "--delimiter", default=",", help="CSV delimiter (default: ,)"
    )
    parser.add_argument(
        "--index",
        action="append",
        default=[],
        metavar="LABEL:KEY",
        help="build a property index (repeatable)",
    )
    parser.add_argument(
        "--constraint",
        action="append",
        default=[],
        metavar="LABEL:KEY",
        help="build a uniqueness constraint (repeatable)",
    )
    parser.add_argument(
        "--synthetic",
        type=int,
        metavar="N",
        help="generate an N-node synthetic CSV pair into OUT first, "
        "then load it (ignores --nodes/--rels)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="parse CSV input with N forked workers over newline-"
        "aligned chunks (csv format only; default: 1 = serial)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the store-invariant verification pass",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the load report as JSON",
    )
    args = parser.parse_args(argv)

    try:
        indexes = _parse_schema_pairs(args.index, "--index")
        constraints = _parse_schema_pairs(args.constraint, "--constraint")

        if args.synthetic is not None:
            nodes_path, rels_path = write_synthetic_csv(
                args.out, args.synthetic
            )
            args.nodes = str(nodes_path)
            args.rels = str(rels_path)
            args.format = "csv"
        if args.nodes is None and args.rels is None:
            parser.error("nothing to load: pass --nodes/--rels or --synthetic")

        if args.parallel > 1 and args.format != "csv":
            parser.error("--parallel requires --format csv")

        started = time.perf_counter()
        if args.format == "csv" and args.parallel > 1:
            nodes = (
                iter_nodes_csv_parallel(
                    Path(args.nodes),
                    args.delimiter,
                    workers=args.parallel,
                )
                if args.nodes
                else None
            )
            rels = (
                iter_rels_csv_parallel(
                    Path(args.rels),
                    args.delimiter,
                    workers=args.parallel,
                )
                if args.rels
                else None
            )
        elif args.format == "csv":
            nodes = (
                iter_nodes_csv(Path(args.nodes), args.delimiter)
                if args.nodes
                else None
            )
            rels = (
                iter_rels_csv(Path(args.rels), args.delimiter)
                if args.rels
                else None
            )
        else:
            nodes = iter_nodes_jsonl(Path(args.nodes)) if args.nodes else None
            rels = iter_rels_jsonl(Path(args.rels)) if args.rels else None
        store = load_store(
            nodes, rels, indexes=indexes, constraints=constraints
        )
        load_seconds = time.perf_counter() - started

        if not args.no_verify:
            from repro.testing.invariants import check_invariants

            check_invariants(store)

        checkpoint_started = time.perf_counter()
        emit_checkpoint(args.out, store)
        checkpoint_seconds = time.perf_counter() - checkpoint_started
    except (LoadError, PersistenceError) as error:
        print(f"bulk load failed: {error}", file=sys.stderr)
        return 1

    entities = store.node_count() + store.relationship_count()
    report = {
        "nodes": store.node_count(),
        "relationships": store.relationship_count(),
        "indexes": len(indexes),
        "constraints": len(constraints),
        "parallel": args.parallel,
        "load_seconds": round(load_seconds, 3),
        "entities_per_second": round(entities / max(load_seconds, 1e-9)),
        "checkpoint_seconds": round(checkpoint_seconds, 3),
        "verified": not args.no_verify,
        "out": str(args.out),
    }
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(
            f"loaded {report['nodes']} nodes / "
            f"{report['relationships']} relationships in "
            f"{report['load_seconds']}s "
            f"({report['entities_per_second']} entities/s), "
            f"checkpoint in {report['checkpoint_seconds']}s -> {args.out}"
        )
        if not args.no_verify:
            print("invariants: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
