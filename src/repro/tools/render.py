"""Rendering helpers: Graphviz DOT and plain-text adjacency listings.

Used by the examples to show before/after graphs, and by the benchmark
harness to dump the figures it regenerates next to the paper's
originals.
"""

from __future__ import annotations

from typing import Any

from repro.graph.model import GraphSnapshot
from repro.graph.store import GraphStore


def _as_snapshot(graph: GraphStore | GraphSnapshot) -> GraphSnapshot:
    if isinstance(graph, GraphStore):
        return graph.snapshot()
    return graph


def _format_props(props: dict[str, Any]) -> str:
    if not props:
        return ""
    inner = ", ".join(f"{k}: {v!r}" for k, v in sorted(props.items()))
    return f" {{{inner}}}"


def to_dot(graph: GraphStore | GraphSnapshot, name: str = "G") -> str:
    """Render the graph as Graphviz DOT."""
    snapshot = _as_snapshot(graph)
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    for node_id in sorted(snapshot.nodes):
        labels = "".join(
            f":{label}"
            for label in sorted(snapshot.labels.get(node_id, frozenset()))
        )
        props = _format_props(dict(snapshot.node_properties.get(node_id, {})))
        text = f"n{node_id}{labels}{props}".replace('"', '\\"')
        lines.append(f'  n{node_id} [label="{text}"];')
    for rel_id in sorted(snapshot.relationships):
        props = _format_props(dict(snapshot.rel_properties.get(rel_id, {})))
        label = f":{snapshot.types[rel_id]}{props}".replace('"', '\\"')
        lines.append(
            f"  n{snapshot.source[rel_id]} -> n{snapshot.target[rel_id]} "
            f'[label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def to_text(graph: GraphStore | GraphSnapshot) -> str:
    """A deterministic plain-text listing of nodes and relationships."""
    snapshot = _as_snapshot(graph)
    lines = []
    for node_id in sorted(snapshot.nodes):
        labels = "".join(
            f":{label}"
            for label in sorted(snapshot.labels.get(node_id, frozenset()))
        )
        props = _format_props(dict(snapshot.node_properties.get(node_id, {})))
        lines.append(f"(#{node_id}{labels}{props})")
    for rel_id in sorted(snapshot.relationships):
        props = _format_props(dict(snapshot.rel_properties.get(rel_id, {})))
        lines.append(
            f"(#{snapshot.source[rel_id]})-[:{snapshot.types[rel_id]}"
            f"{props}]->(#{snapshot.target[rel_id]})"
        )
    return "\n".join(lines)
