"""Rendering and inspection helpers (DOT / ASCII)."""
