"""An interactive Cypher shell and script runner.

Interactive use::

    python -m repro                      # revised dialect
    python -m repro --dialect cypher9    # the legacy semantics

Statements end with ``;`` and may span lines.  Shell commands start
with ``:``  (``:help`` lists them).  Non-interactive use executes a
script file of ``;``-separated statements::

    python -m repro --graph data.json script.cypher
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import IO

from repro.dialect import Dialect
from repro.errors import CypherError
from repro.session import Graph

_HELP = """\
Statements end with ';' and may span multiple lines.
Shell commands:
  :help                 show this help
  :quit                 exit the shell
  :dialect [NAME]       show or switch the dialect (cypher9 | revised)
  :begin / :commit / :rollback   bracket statements in a transaction
  :checkpoint           snapshot a durable graph and truncate its WAL
  :stats                graph statistics
  :views [STATEMENT]    list maintained views (cost vs re-execution),
                        or register STATEMENT as a new view
  :cache                statement-cache and expression-compiler counters
  :schema               indexes and uniqueness constraints
  :explain STATEMENT    show the execution plan without running it
  :plan STATEMENT       show match-planner anchors (planner forced on)
  :profile STATEMENT    run a statement and show per-clause db-hits
  :lint STATEMENT       check a Cypher 9 statement for migration issues
  :dump                 plain-text listing of the graph
  :dot                  Graphviz DOT rendering of the graph
  :load PATH            load a JSON graph (replaces the current one)
  :save PATH            save the graph as JSON
  :clear                drop all data
  :connect URL          attach to a graph server (http://host:port);
                        statements, :begin/:commit/:rollback, :stats,
                        :schema and :checkpoint run remotely
  :disconnect           detach and return to the embedded graph
"""


class Shell:
    """Stateful shell over a :class:`~repro.session.Graph`."""

    def __init__(
        self,
        graph: Graph | None = None,
        *,
        out: IO[str] | None = None,
    ):
        self.graph = graph if graph is not None else Graph()
        self.out = out if out is not None else sys.stdout
        self._buffer: list[str] = []
        self._transaction = None
        #: (client, session) while attached to a server via :connect
        self._remote = None
        self.done = False

    # ------------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    @property
    def prompt(self) -> str:
        """Primary or continuation prompt, depending on buffer state."""
        return "...... " if self._buffer else "cypher> "

    def feed(self, line: str) -> None:
        """Process one input line (statement fragment or command)."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith(":"):
            self._command(stripped)
            return
        if not stripped and not self._buffer:
            return
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._buffer)
            self._buffer = []
            self._execute(statement)

    def feed_script(self, text: str) -> None:
        """Execute a whole script of ``;``-separated statements."""
        for line in text.splitlines():
            self.feed(line)
        if self._buffer:  # allow a final statement without ';'
            statement = "\n".join(self._buffer)
            self._buffer = []
            if statement.strip():
                self._execute(statement)

    # ------------------------------------------------------------------

    def _remote_call(self, action, success: str) -> None:
        """Run a remote client call, printing the outcome."""
        try:
            action()
        except (CypherError, ConnectionError, OSError) as error:
            self._print(f"!! {type(error).__name__}: {error}")
            return
        except Exception as error:  # ServerError and friends
            self._print(f"!! {error}")
            return
        self._print(success)

    def _execute(self, statement: str) -> None:
        started = time.perf_counter()
        try:
            if self._remote is not None:
                result = self._remote[1].run(statement)
            else:
                result = self.graph.run(statement)
        except CypherError as error:
            self._print(f"!! {type(error).__name__}: {error}")
            return
        except (ConnectionError, OSError) as error:
            self._print(f"!! connection lost: {error}")
            return
        except Exception as error:
            # remote ServerError (no local exception class)
            self._print(f"!! {error}")
            return
        elapsed = (time.perf_counter() - started) * 1000
        if len(result):
            self._print(result.pretty())
        summary = [f"{len(result)} row(s) in {elapsed:.1f} ms"]
        counters = result.counters
        if counters.contains_updates:
            parts = []
            if counters.nodes_created:
                parts.append(f"+{counters.nodes_created} nodes")
            if counters.relationships_created:
                parts.append(f"+{counters.relationships_created} rels")
            if counters.nodes_deleted:
                parts.append(f"-{counters.nodes_deleted} nodes")
            if counters.relationships_deleted:
                parts.append(f"-{counters.relationships_deleted} rels")
            if counters.properties_set:
                parts.append(f"~{counters.properties_set} props")
            if counters.labels_added or counters.labels_removed:
                parts.append(
                    f"labels +{counters.labels_added}/-{counters.labels_removed}"
                )
            summary.append(", ".join(parts))
        self._print("; ".join(summary))

    def _command(self, line: str) -> None:
        parts = line.split(None, 1)
        command = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in (":quit", ":exit", ":q"):
            self.done = True
        elif command == ":help":
            self._print(_HELP)
        elif command == ":dialect":
            if argument:
                try:
                    self.graph = self.graph.with_dialect(argument)
                except ValueError as error:
                    self._print(f"!! {error}")
                    return
            self._print(f"dialect: {self.graph.dialect.value}")
        elif command == ":begin":
            if self._remote is not None:
                self._remote_call(self._remote[1].begin, "transaction started")
                return
            if self._transaction is not None:
                self._print("!! transaction already open")
                return
            self._transaction = self.graph.transaction()
            self._print("transaction started")
        elif command == ":commit":
            if self._remote is not None:
                self._remote_call(self._remote[1].commit, "committed")
                return
            if self._transaction is None:
                self._print("!! no open transaction")
                return
            self._transaction.commit()
            self._transaction = None
            self._print("committed")
        elif command == ":rollback":
            if self._remote is not None:
                self._remote_call(self._remote[1].rollback, "rolled back")
                return
            if self._transaction is None:
                self._print("!! no open transaction")
                return
            self._transaction.rollback()
            self._transaction = None
            self._print("rolled back")
        elif command == ":connect":
            if not argument:
                self._print("usage: :connect http://host:port")
                return
            if self._remote is not None:
                self._print("!! already connected; :disconnect first")
                return
            from repro.client import Client

            try:
                client = Client.connect(argument)
                client.health()
                session = client.session()
            except (CypherError, ConnectionError, OSError) as error:
                self._print(f"!! cannot connect to {argument}: {error}")
                return
            self._remote = (client, session)
            self._print(
                f"connected to {argument} (session {session.id}); "
                f"statements now run remotely"
            )
        elif command == ":disconnect":
            if self._remote is None:
                self._print("!! not connected")
                return
            client, session = self._remote
            self._remote = None
            try:
                session.close()
                client.close()
            except (CypherError, ConnectionError, OSError):
                pass
            self._print("disconnected; statements run on the embedded graph")
        elif command == ":checkpoint":
            if self._remote is not None:
                self._remote_call(
                    self._remote[0].checkpoint, "checkpoint written"
                )
                return
            if self.graph.persistence is None:
                self._print(
                    "!! graph is not durable; open it with --path DIR"
                )
                return
            try:
                self.graph.checkpoint()
            except CypherError as error:
                self._print(f"!! {type(error).__name__}: {error}")
                return
            self._print(
                f"checkpoint written (lsn {self.graph.persistence.lsn}), "
                f"WAL truncated"
            )
        elif command == ":stats":
            if self._remote is not None:
                try:
                    stats = self._remote[0].stats()
                except (CypherError, ConnectionError, OSError) as error:
                    self._print(f"!! {error}")
                    return
                for key in sorted(stats):
                    self._print(f"{key}: {stats[key]}")
                return
            self._print(self.graph.statistics().summary())
        elif command == ":views":
            if argument:
                self._register_view(argument.rstrip(";"))
                return
            self._show_views()
        elif command == ":cache":
            from repro.runtime import compiler

            ast_info = self.graph.engine.ast_cache_info()
            closure_info = compiler.cache_info()
            self._print(
                f"statements: {ast_info['size']} cached, "
                f"{ast_info['hits']} hits / {ast_info['misses']} misses, "
                f"{ast_info['evictions']} evicted"
            )
            self._print(
                f"closures:   {closure_info['size']} cached, "
                f"{closure_info['hits']} hits / "
                f"{closure_info['misses']} misses, "
                f"{closure_info['evictions']} evicted"
            )
        elif command == ":schema":
            if self._remote is not None:
                try:
                    schema = self._remote[0].schema()
                except (CypherError, ConnectionError, OSError) as error:
                    self._print(f"!! {error}")
                    return
                for index in schema["indexes"]:
                    self._print(f"INDEX :{index['label']}({index['key']})")
                for item in schema["constraints"]:
                    self._print(f"UNIQUE :{item['label']}({item['key']})")
                if not schema["indexes"] and not schema["constraints"]:
                    self._print("(no indexes or constraints)")
                return
            constraints = sorted(self.graph.store.unique_constraints())
            if constraints:
                for label, key in constraints:
                    self._print(f"UNIQUE :{label}({key})")
            else:
                self._print("(no constraints)")
        elif command == ":explain":
            if not argument:
                self._print("usage: :explain STATEMENT")
                return
            try:
                self._print(self.graph.explain(argument.rstrip(";")))
            except CypherError as error:
                self._print(f"!! {type(error).__name__}: {error}")
        elif command == ":plan":
            if not argument:
                self._print("usage: :plan STATEMENT")
                return
            try:
                self._print(self.graph.plan(argument.rstrip(";")))
            except CypherError as error:
                self._print(f"!! {type(error).__name__}: {error}")
        elif command == ":profile":
            if not argument:
                self._print("usage: :profile STATEMENT")
                return
            try:
                profile = self.graph.profile(argument.rstrip(";"))
            except CypherError as error:
                self._print(f"!! {type(error).__name__}: {error}")
                return
            result = profile.result
            if len(result):
                self._print(result.pretty())
            self._print(profile.render())
        elif command == ":lint":
            if not argument:
                self._print("usage: :lint STATEMENT")
                return
            from repro.tools.migration import lint_statement

            self._print(lint_statement(argument.rstrip(";")).render())
        elif command == ":dump":
            from repro.tools.render import to_text

            self._print(to_text(self.graph.store) or "(empty graph)")
        elif command == ":dot":
            from repro.tools.render import to_dot

            self._print(to_dot(self.graph.store))
        elif command == ":load":
            from repro.io.graph_json import load_graph

            try:
                store = load_graph(argument)
            except CypherError as error:
                self._print(f"!! {error}")
                return
            self.graph = Graph(self.graph.dialect, store=store)
            self._print(f"loaded {self.graph!r}")
        elif command == ":save":
            from repro.io.graph_json import save_graph

            try:
                save_graph(self.graph.store, argument)
            except CypherError as error:
                self._print(f"!! {error}")
                return
            self._print(f"saved to {argument}")
        elif command == ":clear":
            self.graph = Graph(self.graph.dialect)
            self._print("cleared")
        else:
            self._print(f"unknown command {command!r}; try :help")

    def _register_view(self, statement: str) -> None:
        try:
            if self._remote is not None:
                view = self._remote[0].register_view(statement)
                self._print(
                    f"registered {view.id} ({view.mode}, "
                    f"lsn {view.lsn})"
                )
                return
            view = self.graph.register_view(statement)
            self._print(
                f"registered {view.id} ({view.stats.mode}, "
                f"{view.stats.rows} rows)"
            )
        except (CypherError, ConnectionError, OSError) as error:
            self._print(f"!! {error}")

    def _show_views(self) -> None:
        try:
            if self._remote is not None:
                rows = self._remote[0].views()
            else:
                rows = self.graph.views()
        except (CypherError, ConnectionError, OSError) as error:
            self._print(f"!! {error}")
            return
        if not rows:
            self._print("(no views registered)")
            return
        for stats in rows:
            maintain = stats["maintenance_s"]
            reexec = stats["reexec_s"]
            refreshes = (
                stats["delta_refreshes"] + stats["full_refreshes"]
            )
            per_refresh = maintain / refreshes if refreshes else 0.0
            speedup = (
                f"{reexec / per_refresh:.1f}x"
                if per_refresh > 0 and reexec > 0
                else "n/a"
            )
            self._print(
                f"{stats['id']} [{stats['mode']}] rows={stats['rows']} "
                f"lsn={stats['covered_lsn']} "
                f"skipped={stats['batches_skipped']}/"
                f"{stats['batches_seen']} "
                f"maintain={per_refresh * 1e3:.3f}ms/refresh "
                f"reexec={reexec * 1e3:.3f}ms ({speedup})  "
                f"{stats['source']}"
            )


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cypher shell for the PVLDB'19 update-semantics "
        "reproduction",
    )
    parser.add_argument(
        "script",
        nargs="?",
        help="script of ';'-separated statements (default: interactive)",
    )
    parser.add_argument(
        "--dialect",
        default="revised",
        choices=[d.value for d in Dialect],
        help="language dialect (default: revised)",
    )
    parser.add_argument(
        "--graph", help="JSON graph to load before starting", default=None
    )
    parser.add_argument(
        "--path",
        default=None,
        help="persistence directory (write-ahead log + checkpoints); "
        "recovered on start, appended to while running",
    )
    parser.add_argument(
        "--fsync",
        default="batch",
        choices=["always", "batch", "off"],
        help="WAL fsync policy for --path (default: batch)",
    )
    parser.add_argument(
        "--extended-merge",
        action="store_true",
        help="enable the experimental Section 6 MERGE variants",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="lint the script for Cypher 9 -> revised migration issues "
        "instead of executing it",
    )
    args = parser.parse_args(argv)

    if args.lint:
        if not args.script:
            parser.error("--lint requires a script file")
        from repro.tools.migration import lint_script

        with open(args.script, encoding="utf-8") as handle:
            reports = lint_script(handle.read())
        for report in reports:
            print(report.render())
        return 0 if all(not r.breaks for r in reports) else 1

    store = None
    if args.graph:
        from repro.io.graph_json import load_graph

        store = load_graph(args.graph)
    graph = Graph(
        args.dialect,
        extended_merge=args.extended_merge,
        store=store,
        path=args.path,
        fsync=args.fsync,
    )
    shell = Shell(graph)
    if args.path and graph.recovery is not None:
        shell._print(f"recovered: {graph.recovery.summary()}")

    if args.script:
        try:
            with open(args.script, encoding="utf-8") as handle:
                shell.feed_script(handle.read())
        finally:
            graph.close()
        return 0

    shell._print(
        f"repro Cypher shell (dialect: {graph.dialect.value}); "
        f":help for help, :quit to exit"
    )
    try:
        while not shell.done:
            try:
                line = input(shell.prompt)
            except EOFError:
                break
            except KeyboardInterrupt:
                shell._print("")
                continue
            shell.feed(line)
    finally:
        if shell._remote is not None:
            shell._command(":disconnect")
        graph.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
