"""Migration linter: what happens to a Cypher 9 statement under the revision?

Section 9 of the paper: Neo4j planned to roll the revised semantics out
"under the existing deprecation regime to avoid or minimize query
breakage for customers".  This linter is the tool that regime needs: it
takes Cypher 9 statements and reports, per statement,

* **syntax breaks** -- constructs the revised grammar rejects (bare
  ``MERGE``, undirected MERGE patterns, ``ON CREATE``/``ON MATCH``),
  with a suggested rewrite;
* **semantic changes** -- constructs that stay legal but can behave
  differently (multi-target ``SET`` items that read written properties,
  ``DELETE`` without ``DETACH``, statements whose outcome depended on
  the per-record pipeline);
* **unchanged** -- statements whose meaning is identical in both
  dialects.

The analysis is static and conservative: it flags *potential* changes.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator

from repro.dialect import Dialect
from repro.errors import CypherSyntaxError
from repro.parser import ast, parse
from repro.parser.unparse import unparse


class Severity(enum.Enum):
    """How much attention a finding needs."""

    BREAKS = "breaks"          # revised dialect rejects the statement
    CHANGES = "changes"        # legal, but behaviour may differ
    INFO = "info"              # legal and equivalent, FYI only


@dataclasses.dataclass(frozen=True)
class Finding:
    """One migration finding for a statement."""

    severity: Severity
    code: str
    message: str
    suggestion: str = ""

    def render(self) -> str:
        text = f"[{self.severity.value}] {self.code}: {self.message}"
        if self.suggestion:
            text += f"\n    -> {self.suggestion}"
        return text


@dataclasses.dataclass(frozen=True)
class Report:
    """Lint result for one statement."""

    source: str
    findings: tuple[Finding, ...]

    @property
    def breaks(self) -> bool:
        return any(f.severity is Severity.BREAKS for f in self.findings)

    @property
    def changes(self) -> bool:
        return any(f.severity is Severity.CHANGES for f in self.findings)

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        header = self.source.strip().replace("\n", " ")
        if len(header) > 68:
            header = header[:65] + "..."
        if self.clean:
            return f"OK      {header}"
        flag = "BREAKS " if self.breaks else "CHANGES"
        lines = [f"{flag} {header}"]
        lines.extend("  " + finding.render() for finding in self.findings)
        return "\n".join(lines)


def lint_statement(source: str) -> Report:
    """Analyse one Cypher 9 statement for revised-dialect migration."""
    try:
        statement = parse(source, Dialect.CYPHER9)
    except CypherSyntaxError as error:
        return Report(
            source,
            (
                Finding(
                    Severity.BREAKS,
                    "not-cypher9",
                    f"does not parse as Cypher 9: {error}",
                ),
            ),
        )
    if isinstance(statement, ast.SchemaStatement):
        return Report(source, ())
    findings = list(_analyse(statement))
    return Report(source, tuple(findings))


def lint_script(text: str) -> list[Report]:
    """Lint every statement of a ``;``-separated script."""
    from repro.io.cypher_script import split_statements

    return [lint_statement(statement) for statement in split_statements(text)]


# ---------------------------------------------------------------------------

def _analyse(statement: ast.Statement) -> Iterator[Finding]:
    for branch in statement.branches():
        yield from _analyse_clauses(branch.clauses)


def _analyse_clauses(clauses: tuple[ast.Clause, ...]) -> Iterator[Finding]:
    for clause in clauses:
        if isinstance(clause, ast.MergeClause):
            yield from _analyse_merge(clause)
        elif isinstance(clause, ast.SetClause):
            yield from _analyse_set(clause)
        elif isinstance(clause, ast.DeleteClause):
            yield from _analyse_delete(clause, clauses)
        elif isinstance(clause, ast.ForeachClause):
            yield from _analyse_clauses(clause.updates)


def _analyse_merge(clause: ast.MergeClause) -> Iterator[Finding]:
    if clause.semantics != ast.MERGE_LEGACY:
        return
    pattern_text = unparse(clause.pattern)
    undirected = any(
        rel.direction == ast.BOTH
        for path in clause.pattern.paths
        for rel in path.relationships
    )
    suggestion = (
        f"rewrite as `MERGE SAME {_directed_text(clause.pattern)}` to keep "
        f"the match-or-create-minimally intent, or `MERGE ALL ...` to "
        f"always instantiate per record"
    )
    yield Finding(
        Severity.BREAKS,
        "bare-merge",
        f"`MERGE {pattern_text}` is rejected by the revised grammar",
        suggestion,
    )
    if undirected:
        yield Finding(
            Severity.BREAKS,
            "undirected-merge",
            "undirected relationship patterns are not allowed in the "
            "revised MERGE; pick the direction the data should have",
        )
    if clause.on_create or clause.on_match:
        yield Finding(
            Severity.BREAKS,
            "merge-actions",
            "ON CREATE SET / ON MATCH SET are not part of the revised "
            "MERGE",
            "apply the ON MATCH effects with a separate SET after the "
            "MERGE; fold ON CREATE properties into the pattern's map",
        )
    if len(clause.pattern.paths) == 1 and len(
        clause.pattern.paths[0].elements
    ) > 1:
        yield Finding(
            Severity.CHANGES,
            "merge-whole-pattern",
            "legacy MERGE matched-or-created the *entire* pattern per "
            "record and could read its own writes (paper, Example 3); "
            "the revised forms are atomic and deterministic",
        )


def _directed_text(pattern: ast.Pattern) -> str:
    paths = []
    for path in pattern.paths:
        elements = tuple(
            dataclasses.replace(element, direction=ast.OUT)
            if isinstance(element, ast.RelationshipPattern)
            and element.direction == ast.BOTH
            else element
            for element in path.elements
        )
        paths.append(ast.PathPattern(variable=path.variable, elements=elements))
    return unparse(ast.Pattern(paths=tuple(paths)))


def _analyse_set(clause: ast.SetClause) -> Iterator[Finding]:
    # Heuristic for Example 1-style interdependence: some item's value
    # expression reads a (variable, key) that another item writes.
    written: set[tuple[str, str]] = set()
    for item in clause.items:
        if isinstance(item, ast.SetProperty) and isinstance(
            item.target.subject, ast.Variable
        ):
            written.add((item.target.subject.name, item.target.key))
    for item in clause.items:
        value = getattr(item, "value", None)
        if value is None:
            continue
        own_target = (
            (item.target.subject.name, item.target.key)
            if isinstance(item, ast.SetProperty)
            and isinstance(item.target.subject, ast.Variable)
            else None
        )
        for variable, key in _property_reads(value):
            if (variable, key) in written and (variable, key) != own_target:
                yield Finding(
                    Severity.CHANGES,
                    "set-read-write",
                    f"`{unparse(clause)}` reads {variable}.{key}, which "
                    f"another item writes: Cypher 9 applied items "
                    f"sequentially (the Example 1 swap is lost), the "
                    f"revised SET reads all values from the input graph "
                    f"(the swap works)",
                )
                return
            if (variable, key) == own_target:
                yield Finding(
                    Severity.CHANGES,
                    "set-self-reference",
                    f"`{unparse(item.target)} = ...` reads its own "
                    f"target: if several driving-table records hit the "
                    f"same entity, Cypher 9 applied the item cumulatively "
                    f"per record, while the revised SET computes every "
                    f"value from the input graph (duplicates coalesce)",
                )
                return
    # Potential Example 2 ambiguity: same property written from an
    # expression over another matched variable (cannot be decided
    # statically; flag multi-variable writes).
    targets = {
        item.target.subject.name
        for item in clause.items
        if isinstance(item, ast.SetProperty)
        and isinstance(item.target.subject, ast.Variable)
    }
    reads = {
        variable
        for item in clause.items
        if getattr(item, "value", None) is not None
        for variable, __ in _property_reads(item.value)
    }
    if targets and reads - targets:
        yield Finding(
            Severity.CHANGES,
            "set-possible-conflict",
            "this SET copies values between matched entities; if several "
            "records write different values to one property, Cypher 9 "
            "silently kept the last one (Example 2) while the revised "
            "dialect aborts with PropertyConflictError",
        )


def _property_reads(expression: ast.Expression) -> Iterator[tuple[str, str]]:
    from repro.runtime.aggregation import children

    if isinstance(expression, ast.Property) and isinstance(
        expression.subject, ast.Variable
    ):
        yield (expression.subject.name, expression.key)
    for child in children(expression):
        yield from _property_reads(child)


def _analyse_delete(
    clause: ast.DeleteClause, clauses: tuple[ast.Clause, ...]
) -> Iterator[Finding]:
    if clause.detach:
        return
    yield Finding(
        Severity.CHANGES,
        "plain-delete",
        "plain DELETE: Cypher 9 tolerated dangling relationships until "
        "the end of the statement (Section 4.2); the revised dialect "
        "requires every attached relationship to be deleted in the SAME "
        "clause",
        "use DETACH DELETE, or delete the relationships in the same "
        "DELETE clause",
    )
    # Zombie writes: any later SET/REMOVE in the same statement.
    seen_delete = False
    for other in clauses:
        if other is clause:
            seen_delete = True
            continue
        if seen_delete and isinstance(
            other, (ast.SetClause, ast.RemoveClause)
        ):
            yield Finding(
                Severity.CHANGES,
                "write-after-delete",
                "a SET/REMOVE follows a DELETE in the same statement: "
                "Cypher 9 silently dropped writes to deleted entities; "
                "the revised dialect nulls the deleted references (writes "
                "to them become no-ops on null)",
            )
            return
