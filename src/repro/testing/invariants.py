"""Store-invariant oracle: recount everything a :class:`GraphStore` caches.

The store maintains many derived structures incrementally -- live-entity
counters, label-index buckets, grouped adjacency arrays, property-index
buckets and reverse maps -- through every mutation *and* every journal
undo.  A bug in any one of those paths corrupts query results silently:
the planner picks anchors from stale statistics, MATCH skips nodes an
index forgot, degrees drift after rollback.

:func:`check_invariants` is the from-scratch recount.  It walks the raw
node/relationship columns (the single source of truth) and verifies
every cached structure against them, raising :class:`InvariantViolation`
with *all* discrepancies, not just the first.  The differential fuzzer
runs it after every case and after every rollback; the equivalence
property suites run it as a post-condition.

On top of the semantic recount it checks the columnar layout's own
structural invariants: the string pool's forward/reverse tables are
inverses, the dictionary-encoded label-set tables agree with each
other, and every adjacency half is well-formed -- offsets monotone,
group segments sorted and duplicate-free, **no empty type groups**
(deleting the last relationship of a type must compact its group away)
and no duplicate groups for one type.

:func:`journal_roundtrip` brackets a mutation with a mark and verifies
that rolling back restores a byte-identical graph (via the canonical
JSON rendering) and a store that still passes :func:`check_invariants`.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.graph.store import _HOLE, GraphStore


class InvariantViolation(AssertionError):
    """One or more cached store structures disagree with a recount."""

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        super().__init__(
            "store invariants violated:\n  " + "\n  ".join(self.problems)
        )


def canonical_graph_json(store: GraphStore) -> str:
    """Deterministic JSON rendering of the live graph (byte-comparable)."""
    from repro.io.graph_json import graph_to_dict

    return json.dumps(graph_to_dict(store), sort_keys=True)


def _check_adjacency_structure(
    store: GraphStore, problems: list[str]
) -> None:
    """Structural well-formedness of every grouped adjacency half."""
    pool_size = len(store._strings)
    for name, column in (("out", store._adj_out), ("in", store._adj_in)):
        for node_id, half in enumerate(column):
            if half is None:
                continue
            where = f"{name}-adjacency of node {node_id}"
            offsets = half.offsets
            if len(offsets) != len(half.types) + 1 or offsets[0] != 0:
                problems.append(
                    f"{where}: offset table shape {list(offsets)} does not "
                    f"fit {len(half.types)} group(s)"
                )
                continue
            if list(offsets) != sorted(offsets):
                problems.append(
                    f"{where}: offsets {list(offsets)} not monotone"
                )
                continue
            if offsets[-1] != len(half.rels):
                problems.append(
                    f"{where}: offsets end at {offsets[-1]} but the flat "
                    f"array holds {len(half.rels)} relationship(s)"
                )
                continue
            seen_types: set[int] = set()
            for group, type_id in enumerate(half.types):
                if not 0 <= type_id < pool_size:
                    problems.append(
                        f"{where}: group {group} has unknown type id "
                        f"{type_id}"
                    )
                    continue
                if type_id in seen_types:
                    problems.append(
                        f"{where}: duplicate group for type "
                        f"{store._strings.text(type_id)!r}"
                    )
                seen_types.add(type_id)
                segment = list(half.rels[offsets[group]:offsets[group + 1]])
                if not segment:
                    problems.append(
                        f"{where} keeps an empty bucket for type "
                        f"{store._strings.text(type_id)!r}"
                    )
                if segment != sorted(set(segment)):
                    problems.append(
                        f"{where}: type "
                        f"{store._strings.text(type_id)!r} segment "
                        f"{segment} is not strictly ascending"
                    )


def _check_labelset_tables(store: GraphStore, problems: list[str]) -> None:
    """The dictionary-encoded label-set tables must agree everywhere."""
    masks = store._labelset_masks
    strings = store._labelset_strings
    ids = store._labelset_ids
    if not (len(masks) == len(strings) == len(ids)):
        problems.append(
            f"label-set tables disagree on size: {len(masks)} masks, "
            f"{len(strings)} string sets, {len(ids)} interned ids"
        )
        return
    if masks[0] != 0 or strings[0] != frozenset():
        problems.append("label-set id 0 is not the empty set")
    pool_size = len(store._strings)
    for labelset, mask in enumerate(masks):
        if ids.get(mask) != labelset:
            problems.append(
                f"label-set mask {mask:#x} interned as "
                f"{ids.get(mask)} but stored at id {labelset}"
            )
        if mask and mask.bit_length() > pool_size:
            problems.append(
                f"label-set id {labelset} mask {mask:#x} references "
                f"string ids beyond the pool ({pool_size} strings)"
            )
            continue
        decoded = frozenset(
            store._strings.text(bit)
            for bit in range(mask.bit_length())
            if mask >> bit & 1
        )
        if decoded != strings[labelset]:
            problems.append(
                f"label-set id {labelset}: mask decodes to "
                f"{sorted(decoded)} but the string table says "
                f"{sorted(strings[labelset])}"
            )


def check_invariants(
    store: GraphStore, *, allow_dangling: bool = False
) -> None:
    """Verify every cached structure against a from-scratch recount.

    Raises :class:`InvariantViolation` listing every discrepancy.  With
    ``allow_dangling=True`` live relationships whose endpoints are
    tombstones are tolerated (the legacy dialect's mid-statement
    states); by default they are violations, matching the well-formed
    graphs every statement boundary must exhibit.
    """
    problems: list[str] = []
    problems.extend(store._strings.check())
    _check_labelset_tables(store, problems)
    _check_adjacency_structure(store, problems)

    node_ids = [
        node_id
        for node_id in range(len(store._node_labelsets))
        if store._node_labelsets[node_id] != _HOLE
    ]
    rel_ids = [
        rel_id
        for rel_id in range(len(store._rel_types))
        if store._rel_types[rel_id] != _HOLE
    ]
    live_nodes = {
        node_id for node_id in node_ids if not store._node_deleted[node_id]
    }
    live_rels = {
        rel_id for rel_id in rel_ids if not store._rel_deleted[rel_id]
    }

    def labels_of(node_id: int) -> frozenset[str]:
        return store._labelset_strings[store._node_labelsets[node_id]]

    # -- live-entity counters ------------------------------------------
    if store._live_nodes != len(live_nodes):
        problems.append(
            f"live node counter {store._live_nodes} != recount "
            f"{len(live_nodes)}"
        )
    if store._live_rels != len(live_rels):
        problems.append(
            f"live relationship counter {store._live_rels} != recount "
            f"{len(live_rels)}"
        )

    # -- id allocation never reuses ------------------------------------
    if node_ids and max(node_ids) >= store._next_node_id:
        problems.append(
            f"next node id {store._next_node_id} <= existing id "
            f"{max(node_ids)}"
        )
    if rel_ids and max(rel_ids) >= store._next_rel_id:
        problems.append(
            f"next relationship id {store._next_rel_id} <= existing id "
            f"{max(rel_ids)}"
        )

    # -- column shapes stay parallel -----------------------------------
    node_len = len(store._node_labelsets)
    for label, length in (
        ("property", len(store._node_props)),
        ("tombstone", len(store._node_deleted)),
        ("out-adjacency", len(store._adj_out)),
        ("in-adjacency", len(store._adj_in)),
    ):
        if length != node_len:
            problems.append(
                f"node {label} column length {length} != label-set "
                f"column length {node_len}"
            )
    rel_len = len(store._rel_types)
    for label, length in (
        ("source", len(store._rel_source)),
        ("target", len(store._rel_target)),
        ("property", len(store._rel_props)),
        ("tombstone", len(store._rel_deleted)),
    ):
        if length != rel_len:
            problems.append(
                f"relationship {label} column length {length} != type "
                f"column length {rel_len}"
            )

    # -- holes carry no payload ----------------------------------------
    for node_id in range(node_len):
        if store._node_labelsets[node_id] == _HOLE and (
            store._node_props[node_id] is not None
            or store._node_deleted[node_id]
            or store._adj_out[node_id] is not None
            or store._adj_in[node_id] is not None
        ):
            problems.append(
                f"node column hole {node_id} still carries payload"
            )
    for rel_id in range(rel_len):
        if store._rel_types[rel_id] == _HOLE and (
            store._rel_props[rel_id] is not None
            or store._rel_deleted[rel_id]
        ):
            problems.append(
                f"relationship column hole {rel_id} still carries payload"
            )

    # -- dangling relationships ----------------------------------------
    if not allow_dangling:
        for rel_id in sorted(live_rels):
            for role, endpoint in (
                ("source", store._rel_source[rel_id]),
                ("target", store._rel_target[rel_id]),
            ):
                if endpoint not in live_nodes:
                    problems.append(
                        f"live relationship {rel_id} has deleted/missing "
                        f"{role} node {endpoint}"
                    )

    # -- untyped adjacency ---------------------------------------------
    expected_out: dict[int, set[int]] = {}
    expected_in: dict[int, set[int]] = {}
    for rel_id in live_rels:
        expected_out.setdefault(store._rel_source[rel_id], set()).add(rel_id)
        expected_in.setdefault(store._rel_target[rel_id], set()).add(rel_id)
    for name, column, expected in (
        ("out", store._adj_out, expected_out),
        ("in", store._adj_in, expected_in),
    ):
        for node_id, half in enumerate(column):
            rel_set = set(half.rels) if half is not None else set()
            extra = rel_set - expected.get(node_id, set())
            if extra:
                problems.append(
                    f"{name}-adjacency of node {node_id} holds "
                    f"non-live relationship(s) {sorted(extra)}"
                )
        for node_id, rel_set in expected.items():
            half = column[node_id] if node_id < len(column) else None
            cached = set(half.rels) if half is not None else set()
            missing = rel_set - cached
            if missing:
                problems.append(
                    f"{name}-adjacency of node {node_id} is missing "
                    f"relationship(s) {sorted(missing)}"
                )

    # -- per-type adjacency --------------------------------------------
    expected_out_t: dict[tuple[int, str], set[int]] = {}
    expected_in_t: dict[tuple[int, str], set[int]] = {}
    for rel_id in live_rels:
        rel_type = store._strings.text(store._rel_types[rel_id])
        expected_out_t.setdefault(
            (store._rel_source[rel_id], rel_type), set()
        ).add(rel_id)
        expected_in_t.setdefault(
            (store._rel_target[rel_id], rel_type), set()
        ).add(rel_id)
    for name, column, expected_t in (
        ("typed out", store._adj_out, expected_out_t),
        ("typed in", store._adj_in, expected_in_t),
    ):
        flattened: dict[tuple[int, str], set[int]] = {}
        for node_id, half in enumerate(column):
            if half is None:
                continue
            for type_id, segment in half.groups():
                if segment:
                    flattened[
                        (node_id, store._strings.text(type_id))
                    ] = set(segment)
        for key in sorted(set(flattened) | set(expected_t)):
            got = flattened.get(key, set())
            want = expected_t.get(key, set())
            if got != want:
                node_id, rel_type = key
                problems.append(
                    f"{name}-adjacency of node {node_id} type "
                    f"{rel_type!r}: cached {sorted(got)} != recount "
                    f"{sorted(want)}"
                )

    # -- label index ----------------------------------------------------
    expected_labels: dict[str, set[int]] = {}
    for node_id in live_nodes:
        for label in labels_of(node_id):
            expected_labels.setdefault(label, set()).add(node_id)
    cached_labels = store._label_index._by_label
    for label in sorted(set(cached_labels) | set(expected_labels)):
        got = set(cached_labels.get(label, set()))
        want = expected_labels.get(label, set())
        if got != want:
            problems.append(
                f"label index for :{label}: cached {sorted(got)} != "
                f"recount {sorted(want)}"
            )
        if store.label_count(label) != len(want):
            problems.append(
                f"label_count(:{label}) = {store.label_count(label)} != "
                f"recount {len(want)}"
            )
    for label, bucket in cached_labels.items():
        if not bucket:
            problems.append(f"label index keeps an empty bucket for :{label}")

    # -- property indexes ----------------------------------------------
    from repro.graph.values import grouping_key, is_storable

    for (label, key), index in store._property_indexes.items():
        expected_entries: dict[int, Any] = {}
        for node_id in expected_labels.get(label, set()):
            properties = store._node_props[node_id]
            value = None if properties is None else properties.get(key)
            if value is not None and is_storable(value):
                expected_entries[node_id] = grouping_key(value)
        if dict(index._value_of) != expected_entries:
            stale = sorted(set(index._value_of) - set(expected_entries))
            missing = sorted(set(expected_entries) - set(index._value_of))
            wrong = sorted(
                node_id
                for node_id in set(index._value_of) & set(expected_entries)
                if index._value_of[node_id] != expected_entries[node_id]
            )
            problems.append(
                f"property index :{label}({key}) reverse map: "
                f"stale {stale}, missing {missing}, wrong value {wrong}"
            )
        expected_buckets: dict[Any, set[int]] = {}
        for node_id, bucket_key in expected_entries.items():
            expected_buckets.setdefault(bucket_key, set()).add(node_id)
        cached_buckets = {
            bucket_key: set(bucket)
            for bucket_key, bucket in index._by_value.items()
            if bucket
        }
        if cached_buckets != expected_buckets:
            problems.append(
                f"property index :{label}({key}) buckets disagree with "
                f"recount ({len(cached_buckets)} cached vs "
                f"{len(expected_buckets)} expected buckets)"
            )
        for bucket_key, bucket in index._by_value.items():
            if not bucket:
                problems.append(
                    f"property index :{label}({key}) keeps an empty "
                    f"bucket for {bucket_key!r}"
                )
        if len(index) != len(expected_entries):
            problems.append(
                f"property index :{label}({key}) len {len(index)} != "
                f"recount {len(expected_entries)}"
            )
        if index.bucket_count() != len(expected_buckets):
            problems.append(
                f"property index :{label}({key}) bucket_count "
                f"{index.bucket_count()} != recount {len(expected_buckets)}"
            )

    # -- degree statistics ---------------------------------------------
    for node_id in sorted(live_nodes):
        out_recount = len(expected_out.get(node_id, set()))
        in_recount = len(expected_in.get(node_id, set()))
        if store.out_degree(node_id) != out_recount:
            problems.append(
                f"out_degree({node_id}) = {store.out_degree(node_id)} != "
                f"recount {out_recount}"
            )
        if store.in_degree(node_id) != in_recount:
            problems.append(
                f"in_degree({node_id}) = {store.in_degree(node_id)} != "
                f"recount {in_recount}"
            )
        if store.degree(node_id) != out_recount + in_recount:
            problems.append(
                f"degree({node_id}) = {store.degree(node_id)} != "
                f"recount {out_recount + in_recount}"
            )
        enumerated = store.adjacent_rel_ids(node_id)
        expected_adjacent = sorted(
            expected_out.get(node_id, set()) | expected_in.get(node_id, set())
        )
        if enumerated != expected_adjacent:
            problems.append(
                f"adjacent_rel_ids({node_id}) = {enumerated} != "
                f"recount {expected_adjacent}"
            )

    # -- uniqueness constraints ----------------------------------------
    for label, key in sorted(store._unique_constraints):
        index = store._property_indexes.get((label, key))
        if index is None:
            problems.append(
                f"uniqueness constraint :{label}({key}) has no backing index"
            )
            continue
        for bucket in index.duplicate_buckets():
            problems.append(
                f"uniqueness constraint :{label}({key}) violated by "
                f"nodes {sorted(bucket)}"
            )

    if problems:
        raise InvariantViolation(problems)


def journal_roundtrip(
    store: GraphStore,
    mutate: Callable[[], Any],
    *,
    allow_dangling: bool = False,
) -> Any:
    """Run *mutate*, then undo it and verify the store is byte-identical.

    Returns whatever *mutate* returned (or re-raises its exception after
    verifying the rollback the mutation itself performed, if any, left a
    consistent store).  Used by tests; the differential executor inlines
    the same bracket so it can keep the post-state for comparison.
    """
    before = canonical_graph_json(store)
    mark = store.mark()
    try:
        result = mutate()
    finally:
        store.rollback_to(mark)
        after = canonical_graph_json(store)
        if after != before:
            raise InvariantViolation(
                [
                    "journal rollback did not restore the graph "
                    "byte-identically",
                    f"before: {before}",
                    f"after:  {after}",
                ]
            )
        check_invariants(store, allow_dangling=allow_dangling)
    return result
