"""Store-invariant oracle: recount everything a :class:`GraphStore` caches.

The store maintains many derived structures incrementally -- live-entity
counters, label-index buckets, per-type adjacency, property-index
buckets and reverse maps -- through every mutation *and* every journal
undo.  A bug in any one of those paths corrupts query results silently:
the planner picks anchors from stale statistics, MATCH skips nodes an
index forgot, degrees drift after rollback.

:func:`check_invariants` is the from-scratch recount.  It walks the raw
node/relationship records (the single source of truth) and verifies
every cached structure against them, raising :class:`InvariantViolation`
with *all* discrepancies, not just the first.  The differential fuzzer
runs it after every case and after every rollback; the equivalence
property suites run it as a post-condition.

:func:`journal_roundtrip` brackets a mutation with a mark and verifies
that rolling back restores a byte-identical graph (via the canonical
JSON rendering) and a store that still passes :func:`check_invariants`.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.graph.store import GraphStore


class InvariantViolation(AssertionError):
    """One or more cached store structures disagree with a recount."""

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        super().__init__(
            "store invariants violated:\n  " + "\n  ".join(self.problems)
        )


def canonical_graph_json(store: GraphStore) -> str:
    """Deterministic JSON rendering of the live graph (byte-comparable)."""
    from repro.io.graph_json import graph_to_dict

    return json.dumps(graph_to_dict(store), sort_keys=True)


def check_invariants(
    store: GraphStore, *, allow_dangling: bool = False
) -> None:
    """Verify every cached structure against a from-scratch recount.

    Raises :class:`InvariantViolation` listing every discrepancy.  With
    ``allow_dangling=True`` live relationships whose endpoints are
    tombstones are tolerated (the legacy dialect's mid-statement
    states); by default they are violations, matching the well-formed
    graphs every statement boundary must exhibit.
    """
    problems: list[str] = []
    live_nodes = {
        node_id
        for node_id, record in store._nodes.items()
        if not record.deleted
    }
    live_rels = {
        rel_id
        for rel_id, record in store._rels.items()
        if not record.deleted
    }

    # -- live-entity counters ------------------------------------------
    if store._live_nodes != len(live_nodes):
        problems.append(
            f"live node counter {store._live_nodes} != recount "
            f"{len(live_nodes)}"
        )
    if store._live_rels != len(live_rels):
        problems.append(
            f"live relationship counter {store._live_rels} != recount "
            f"{len(live_rels)}"
        )

    # -- id allocation never reuses ------------------------------------
    if store._nodes and max(store._nodes) >= store._next_node_id:
        problems.append(
            f"next node id {store._next_node_id} <= existing id "
            f"{max(store._nodes)}"
        )
    if store._rels and max(store._rels) >= store._next_rel_id:
        problems.append(
            f"next relationship id {store._next_rel_id} <= existing id "
            f"{max(store._rels)}"
        )

    # -- dangling relationships ----------------------------------------
    if not allow_dangling:
        for rel_id in sorted(live_rels):
            record = store._rels[rel_id]
            for role, endpoint in (
                ("source", record.source),
                ("target", record.target),
            ):
                if endpoint not in live_nodes:
                    problems.append(
                        f"live relationship {rel_id} has deleted/missing "
                        f"{role} node {endpoint}"
                    )

    # -- untyped adjacency ---------------------------------------------
    expected_out: dict[int, set[int]] = {}
    expected_in: dict[int, set[int]] = {}
    for rel_id in live_rels:
        record = store._rels[rel_id]
        expected_out.setdefault(record.source, set()).add(rel_id)
        expected_in.setdefault(record.target, set()).add(rel_id)
    for name, cached, expected in (
        ("out", store._out, expected_out),
        ("in", store._in, expected_in),
    ):
        for node_id, rel_ids in cached.items():
            extra = rel_ids - expected.get(node_id, set())
            if extra:
                problems.append(
                    f"{name}-adjacency of node {node_id} holds "
                    f"non-live relationship(s) {sorted(extra)}"
                )
        for node_id, rel_ids in expected.items():
            missing = rel_ids - cached.get(node_id, set())
            if missing:
                problems.append(
                    f"{name}-adjacency of node {node_id} is missing "
                    f"relationship(s) {sorted(missing)}"
                )

    # -- per-type adjacency --------------------------------------------
    expected_out_t: dict[tuple[int, str], set[int]] = {}
    expected_in_t: dict[tuple[int, str], set[int]] = {}
    for rel_id in live_rels:
        record = store._rels[rel_id]
        expected_out_t.setdefault(
            (record.source, record.type), set()
        ).add(rel_id)
        expected_in_t.setdefault(
            (record.target, record.type), set()
        ).add(rel_id)
    for name, cached, expected_t in (
        ("typed out", store._out_by_type, expected_out_t),
        ("typed in", store._in_by_type, expected_in_t),
    ):
        flattened: dict[tuple[int, str], set[int]] = {}
        for node_id, buckets in cached.items():
            for rel_type, rel_ids in buckets.items():
                if rel_ids:
                    flattened[(node_id, rel_type)] = set(rel_ids)
        for key in sorted(set(flattened) | set(expected_t)):
            got = flattened.get(key, set())
            want = expected_t.get(key, set())
            if got != want:
                node_id, rel_type = key
                problems.append(
                    f"{name}-adjacency of node {node_id} type "
                    f"{rel_type!r}: cached {sorted(got)} != recount "
                    f"{sorted(want)}"
                )

    # -- label index ----------------------------------------------------
    expected_labels: dict[str, set[int]] = {}
    for node_id in live_nodes:
        for label in store._nodes[node_id].labels:
            expected_labels.setdefault(label, set()).add(node_id)
    cached_labels = store._label_index._by_label
    for label in sorted(set(cached_labels) | set(expected_labels)):
        got = set(cached_labels.get(label, set()))
        want = expected_labels.get(label, set())
        if got != want:
            problems.append(
                f"label index for :{label}: cached {sorted(got)} != "
                f"recount {sorted(want)}"
            )
        if store.label_count(label) != len(want):
            problems.append(
                f"label_count(:{label}) = {store.label_count(label)} != "
                f"recount {len(want)}"
            )
    for label, bucket in cached_labels.items():
        if not bucket:
            problems.append(f"label index keeps an empty bucket for :{label}")

    # -- property indexes ----------------------------------------------
    from repro.graph.values import grouping_key, is_storable

    for (label, key), index in store._property_indexes.items():
        expected_entries: dict[int, Any] = {}
        for node_id in expected_labels.get(label, set()):
            value = store._nodes[node_id].properties.get(key)
            if value is not None and is_storable(value):
                expected_entries[node_id] = grouping_key(value)
        if dict(index._value_of) != expected_entries:
            stale = sorted(set(index._value_of) - set(expected_entries))
            missing = sorted(set(expected_entries) - set(index._value_of))
            wrong = sorted(
                node_id
                for node_id in set(index._value_of) & set(expected_entries)
                if index._value_of[node_id] != expected_entries[node_id]
            )
            problems.append(
                f"property index :{label}({key}) reverse map: "
                f"stale {stale}, missing {missing}, wrong value {wrong}"
            )
        expected_buckets: dict[Any, set[int]] = {}
        for node_id, bucket_key in expected_entries.items():
            expected_buckets.setdefault(bucket_key, set()).add(node_id)
        cached_buckets = {
            bucket_key: set(bucket)
            for bucket_key, bucket in index._by_value.items()
            if bucket
        }
        if cached_buckets != expected_buckets:
            problems.append(
                f"property index :{label}({key}) buckets disagree with "
                f"recount ({len(cached_buckets)} cached vs "
                f"{len(expected_buckets)} expected buckets)"
            )
        for bucket_key, bucket in index._by_value.items():
            if not bucket:
                problems.append(
                    f"property index :{label}({key}) keeps an empty "
                    f"bucket for {bucket_key!r}"
                )
        if len(index) != len(expected_entries):
            problems.append(
                f"property index :{label}({key}) len {len(index)} != "
                f"recount {len(expected_entries)}"
            )
        if index.bucket_count() != len(expected_buckets):
            problems.append(
                f"property index :{label}({key}) bucket_count "
                f"{index.bucket_count()} != recount {len(expected_buckets)}"
            )

    # -- degree statistics ---------------------------------------------
    for node_id in sorted(live_nodes):
        out_recount = len(expected_out.get(node_id, set()))
        in_recount = len(expected_in.get(node_id, set()))
        if store.out_degree(node_id) != out_recount:
            problems.append(
                f"out_degree({node_id}) = {store.out_degree(node_id)} != "
                f"recount {out_recount}"
            )
        if store.in_degree(node_id) != in_recount:
            problems.append(
                f"in_degree({node_id}) = {store.in_degree(node_id)} != "
                f"recount {in_recount}"
            )
        if store.degree(node_id) != out_recount + in_recount:
            problems.append(
                f"degree({node_id}) = {store.degree(node_id)} != "
                f"recount {out_recount + in_recount}"
            )
        enumerated = store.adjacent_rel_ids(node_id)
        expected_adjacent = sorted(
            expected_out.get(node_id, set()) | expected_in.get(node_id, set())
        )
        if enumerated != expected_adjacent:
            problems.append(
                f"adjacent_rel_ids({node_id}) = {enumerated} != "
                f"recount {expected_adjacent}"
            )

    # -- uniqueness constraints ----------------------------------------
    for label, key in sorted(store._unique_constraints):
        index = store._property_indexes.get((label, key))
        if index is None:
            problems.append(
                f"uniqueness constraint :{label}({key}) has no backing index"
            )
            continue
        for bucket in index.duplicate_buckets():
            problems.append(
                f"uniqueness constraint :{label}({key}) violated by "
                f"nodes {sorted(bucket)}"
            )

    if problems:
        raise InvariantViolation(problems)


def journal_roundtrip(
    store: GraphStore,
    mutate: Callable[[], Any],
    *,
    allow_dangling: bool = False,
) -> Any:
    """Run *mutate*, then undo it and verify the store is byte-identical.

    Returns whatever *mutate* returned (or re-raises its exception after
    verifying the rollback the mutation itself performed, if any, left a
    consistent store).  Used by tests; the differential executor inlines
    the same bracket so it can keep the post-state for comparison.
    """
    before = canonical_graph_json(store)
    mark = store.mark()
    try:
        result = mutate()
    finally:
        store.rollback_to(mark)
        after = canonical_graph_json(store)
        if after != before:
            raise InvariantViolation(
                [
                    "journal rollback did not restore the graph "
                    "byte-identically",
                    f"before: {before}",
                    f"after:  {after}",
                ]
            )
        check_invariants(store, allow_dangling=allow_dangling)
    return result
