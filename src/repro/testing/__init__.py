"""Differential conformance testing: fuzzer, oracles, shrinking.

The subsystem has five parts (see ``docs/testing.md``):

* :mod:`repro.testing.generator` -- seeded, schema-aware random update
  pipelines biased toward the paper's anomaly shapes;
* :mod:`repro.testing.differential` -- runs each case across planner
  on/off, compiled/interpreted expressions and all MERGE semantics,
  asserting the agreements each dialect promises;
* :mod:`repro.testing.invariants` -- the store-invariant oracle
  (:func:`check_invariants`) recounting every cached structure;
* :mod:`repro.testing.shrinker` -- greedy minimisation of failures;
* :mod:`repro.testing.corpus` -- replayable bundles under
  ``tests/fuzz_corpus/``.

CLI: ``python -m repro.fuzz --seed S --cases N``.
"""

from repro.testing.differential import CaseResult, run_case
from repro.testing.generator import FuzzCase, case_for, cases
from repro.testing.invariants import (
    InvariantViolation,
    canonical_graph_json,
    check_invariants,
    journal_roundtrip,
)
from repro.testing.shrinker import shrink

__all__ = [
    "CaseResult",
    "FuzzCase",
    "InvariantViolation",
    "canonical_graph_json",
    "case_for",
    "cases",
    "check_invariants",
    "journal_roundtrip",
    "run_case",
    "shrink",
]
