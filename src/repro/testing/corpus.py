"""Replayable failure bundles under ``tests/fuzz_corpus/``.

When the fuzzer finds a failing case it shrinks it and writes a JSON
bundle -- seed key, dialect, statement *text* (so a human can paste it
into a session), the base graph, indexes, the merge payload if any, and
the failure messages observed at write time.  Bundles are named by a
content hash, so re-finding the same minimal case is idempotent.

Checked-in bundles are the regression corpus: CI replays every bundle
through the differential executor and expects it to PASS (the bug that
produced it has been fixed; the bundle keeps it fixed).  A bundle for a
still-open bug would fail the replay step, which is the point -- it
cannot be merged before the fix.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.dialect import Dialect
from repro.testing.generator import FuzzCase

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS = Path("tests") / "fuzz_corpus"


def bundle_dict(case: FuzzCase, failures: list[str] | None = None) -> dict:
    """The JSON-serialisable form of one case."""
    return {
        "format": 1,
        "seed_key": case.seed_key,
        "kind": case.kind,
        "dialect": case.dialect,
        "statements": list(case.statement_sources()),
        "graph": case.graph,
        "indexes": [list(pair) for pair in case.indexes],
        "merge_pattern": case.merge_pattern,
        "merge_table": case.merge_table,
        "views": [list(pair) for pair in case.views],
        "failures": list(failures or ()),
    }


def case_from_dict(data: dict) -> FuzzCase:
    """Rebuild a runnable case from a bundle (statements re-parsed)."""
    from repro.parser.parser import parse

    dialect = Dialect.parse(data["dialect"])
    statements = tuple(
        parse(source, dialect, extended_merge=True)
        for source in data["statements"]
    )
    return FuzzCase(
        kind=data["kind"],
        seed_key=data["seed_key"],
        graph=data["graph"],
        indexes=tuple(
            (label, key) for label, key in data.get("indexes", ())
        ),
        dialect=data["dialect"],
        statements=statements,
        merge_pattern=data.get("merge_pattern"),
        merge_table=data.get("merge_table"),
        views=tuple(
            (source, view_dialect)
            for source, view_dialect in data.get("views", ())
        ),
    )


def bundle_name(case: FuzzCase) -> str:
    """Content-addressed filename (failure text excluded)."""
    payload = bundle_dict(case)
    payload.pop("failures", None)
    digest = hashlib.sha1(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return f"fuzz_{digest[:12]}.json"


def write_bundle(
    case: FuzzCase,
    failures: list[str] | None = None,
    directory: Path | str = DEFAULT_CORPUS,
) -> Path:
    """Write (or overwrite) the bundle for *case*; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / bundle_name(case)
    path.write_text(
        json.dumps(bundle_dict(case, failures), indent=2, sort_keys=True)
        + "\n"
    )
    return path


def load_bundle(path: Path | str) -> tuple[FuzzCase, list[str]]:
    """The case a bundle describes, plus its recorded failures."""
    data = json.loads(Path(path).read_text())
    return case_from_dict(data), list(data.get("failures", ()))


def iter_bundles(directory: Path | str = DEFAULT_CORPUS) -> list[Path]:
    """All bundle files in *directory*, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("fuzz_*.json"))


def replay_bundle(path: Path | str):
    """Re-run one bundle through the differential executor.

    Bundles carrying registered ``views`` replay through the
    view-maintenance oracle instead of the plain variant matrix.
    """
    from repro.testing.differential import run_case, run_views_case

    case, __ = load_bundle(path)
    if case.views:
        return run_views_case(case)
    return run_case(case)
