"""Seeded, schema-aware fuzz-case generation.

Every case is generated from ``random.Random(f"{seed}:{index}")``, so a
``(seed, index)`` pair names one case forever -- the CLI, the corpus
bundles and the CI smoke job all rely on that determinism.

A case bundles a random graph (over a tiny fixed schema: labels A/B/C,
relationship types T/S, integer keys ``i``/``k`` plus a string ``name``)
with either

* a pipeline of 1-2 random update statements, built directly as
  :mod:`repro.parser.ast` values (``kind="revised"`` for the free
  interleaving of Figure 10, ``kind="legacy"`` for the reading-then-
  updating shape of Figure 2), or
* a MERGE pattern plus a driving table with controlled duplicates and
  nulls (``kind="merge"``), for the five-semantics sweep.

Generation is *biased toward the paper's anomaly shapes*: self-reading
and conflicting SET items (Example 1/2), DELETE of nodes that still
have relationships (Section 4.2), and MERGE property maps that read
driving values (Example 3 / Figure 6 order dependence).

Statements are valid by construction (the builder tracks the bound
variables exactly like :mod:`repro.runtime.scoping` does) and are
re-checked with :func:`~repro.runtime.scoping.check_statement`; the
rare reject is regenerated.  The parse -> unparse -> parse round-trip
over this corpus is a separate property test
(``tests/properties/test_fuzz_roundtrip.py``) -- the generator never
filters on it, so round-trip bugs surface instead of hiding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.dialect import Dialect
from repro.graph.store import GraphStore
from repro.parser import ast
from repro.runtime.scoping import check_statement

LABELS = ("A", "B", "C")
REL_TYPES = ("T", "S")
INT_KEYS = ("i", "k")
STRING_KEY = "name"
STRINGS = ("ann", "bob", "cat")

#: How many differential case kinds exist, in generation rotation order.
KINDS = ("revised", "legacy", "merge")


@dataclass(frozen=True)
class FuzzCase:
    """One reproducible differential test case."""

    kind: str
    seed_key: str
    #: graph in :func:`repro.io.graph_json.graph_to_dict` form
    graph: dict
    indexes: tuple[tuple[str, str], ...] = ()
    dialect: str = Dialect.REVISED.value
    statements: tuple[ast.Statement, ...] = ()
    #: merge-kind payload: pattern source text and a driving table
    merge_pattern: str | None = None
    merge_table: dict | None = None
    #: registered view queries as ``(source, dialect)`` pairs -- the
    #: views fuzz mode asserts maintained == re-executed after every
    #: statement (see ``repro.testing.differential.run_views_case``)
    views: tuple[tuple[str, str], ...] = ()

    def statement_sources(self) -> tuple[str, ...]:
        """The statements as canonical Cypher text."""
        from repro.parser.unparse import unparse

        return tuple(unparse(statement) for statement in self.statements)


def build_store(case: FuzzCase) -> GraphStore:
    """Materialise the case's base graph (plus its indexes)."""
    from repro.io.graph_json import dict_to_store

    store = dict_to_store(case.graph)
    for label, key in case.indexes:
        store.create_index(label, key)
    return store


def case_for(seed: int, index: int) -> FuzzCase:
    """The deterministic case at position *index* of stream *seed*."""
    seed_key = f"{seed}:{index}"
    rng = random.Random(seed_key)
    kind = KINDS[index % len(KINDS)]
    graph, indexes = _random_graph(rng)
    if kind == "merge":
        pattern, table = _merge_payload(rng)
        return FuzzCase(
            kind=kind,
            seed_key=seed_key,
            graph=graph,
            indexes=indexes,
            merge_pattern=pattern,
            merge_table=table,
        )
    dialect = Dialect.REVISED if kind == "revised" else Dialect.CYPHER9
    statements = tuple(
        _statement(rng, dialect) for __ in range(rng.randint(1, 2))
    )
    return FuzzCase(
        kind=kind,
        seed_key=seed_key,
        graph=graph,
        indexes=indexes,
        dialect=dialect.value,
        statements=statements,
    )


def cases(seed: int, count: int) -> list[FuzzCase]:
    """The first *count* cases of stream *seed*."""
    return [case_for(seed, index) for index in range(count)]


def with_views(case: FuzzCase, count: int) -> FuzzCase:
    """*case* plus *count* deterministic registered read queries."""
    return replace(case, views=view_queries_for(case.seed_key, count))


def view_queries_for(
    seed_key: str, count: int
) -> tuple[tuple[str, str], ...]:
    """*count* read queries derived from *seed_key*, as (source,
    dialect) pairs.

    Biased toward the delta-maintainable shape (one fixed-length
    MATCH path, tame WHERE, property projections) but deliberately
    including fallback shapes -- var-length steps, OPTIONAL MATCH,
    second MATCH clauses, aggregates, UNWIND-first -- so both
    maintenance modes are exercised against full re-execution.
    """
    from repro.parser.unparse import unparse

    queries = []
    for index in range(count):
        rng = random.Random(f"{seed_key}:views:{index}")
        dialect = (
            Dialect.REVISED if rng.random() < 0.5 else Dialect.CYPHER9
        )
        statement = _read_statement(rng, dialect)
        queries.append((unparse(statement), dialect.value))
    return tuple(queries)


# ---------------------------------------------------------------------------
# Random graphs
# ---------------------------------------------------------------------------


def _random_graph(rng: random.Random) -> tuple[dict, tuple]:
    node_count = rng.randint(0, 8)
    nodes = []
    for node_id in range(node_count):
        labels = sorted(
            label for label in LABELS if rng.random() < 0.45
        )
        properties: dict = {}
        for key in INT_KEYS:
            if rng.random() < 0.6:
                properties[key] = rng.randint(0, 4)
        if rng.random() < 0.3:
            properties[STRING_KEY] = rng.choice(STRINGS)
        nodes.append(
            {"id": node_id, "labels": labels, "properties": properties}
        )
    relationships = []
    if node_count:
        for rel_id in range(rng.randint(0, min(12, 2 * node_count))):
            properties = (
                {"w": rng.randint(0, 3)} if rng.random() < 0.4 else {}
            )
            relationships.append(
                {
                    "id": rel_id,
                    "type": rng.choice(REL_TYPES),
                    "start": rng.randrange(node_count),
                    "end": rng.randrange(node_count),
                    "properties": properties,
                }
            )
    indexes = tuple(
        (label, key)
        for label in LABELS
        for key in INT_KEYS
        if rng.random() < 0.2
    )
    return {"nodes": nodes, "relationships": relationships}, indexes


# ---------------------------------------------------------------------------
# Merge-kind payloads
# ---------------------------------------------------------------------------


def _merge_payload(rng: random.Random) -> tuple[str, dict]:
    """A directed MERGE pattern plus an Example 3/5-shaped table."""
    columns = ("cid", "pid")
    length = rng.randint(1, 2)
    parts = [f"(u:{rng.choice(LABELS)} {{i: cid}})"]
    for step in range(length):
        rel_type = rng.choice(REL_TYPES)
        arrow = f"-[:{rel_type}]->" if rng.random() < 0.8 else f"<-[:{rel_type}]-"
        tail_props = "{i: pid}" if step == length - 1 else "{i: cid}"
        parts.append(f"{arrow}(n{step}:{rng.choice(LABELS)} {tail_props})")
    pattern = "".join(parts)
    if rng.random() < 0.3:
        pattern = f"(u:{rng.choice(LABELS)} {{i: cid, k: pid}})"
    rows: list[dict] = []
    seen: list[tuple] = []
    for __ in range(rng.randint(2, 9)):
        if seen and rng.random() < 0.4:
            cid, pid = rng.choice(seen)
        else:
            cid = rng.randint(0, 3)
            pid = None if rng.random() < 0.25 else rng.randint(0, 3)
            seen.append((cid, pid))
        rows.append({"cid": cid, "pid": pid})
    return pattern, {"columns": list(columns), "records": rows}


# ---------------------------------------------------------------------------
# Statement generation
# ---------------------------------------------------------------------------


@dataclass
class _Env:
    """The builder's model of the variables in scope."""

    nodes: list[str] = field(default_factory=list)
    rels: list[str] = field(default_factory=list)
    values: list[str] = field(default_factory=list)
    counter: int = 0

    def fresh(self, prefix: str) -> str:
        name = f"{prefix}{self.counter}"
        self.counter += 1
        return name

    def all_names(self) -> list[str]:
        return self.nodes + self.rels + self.values

    def copy(self) -> "_Env":
        return _Env(
            nodes=list(self.nodes),
            rels=list(self.rels),
            values=list(self.values),
            counter=self.counter,
        )


def _read_statement(
    rng: random.Random, dialect: Dialect
) -> ast.Statement:
    """One scope-valid read-only statement (retry on the rare reject)."""
    for __ in range(8):
        builder = _Builder(rng, dialect)
        statement = builder.read_statement()
        try:
            check_statement(statement)
        except Exception:
            continue
        return statement
    return ast.Statement(
        query=ast.SingleQuery(
            clauses=(
                ast.ReturnClause(
                    body=ast.ProjectionBody(
                        items=(
                            ast.ProjectionItem(ast.Literal(1), alias="one"),
                        )
                    )
                ),
            )
        )
    )


def _statement(rng: random.Random, dialect: Dialect) -> ast.Statement:
    """One scope-valid statement for *dialect* (retry on the rare reject)."""
    for __ in range(8):
        builder = _Builder(rng, dialect)
        statement = builder.statement()
        try:
            check_statement(statement)
        except Exception:
            continue
        return statement
    # Defensive fallback; the builder should essentially never get here.
    return ast.Statement(
        query=ast.SingleQuery(
            clauses=(
                ast.ReturnClause(
                    body=ast.ProjectionBody(
                        items=(
                            ast.ProjectionItem(ast.Literal(1), alias="one"),
                        )
                    )
                ),
            )
        )
    )


class _Builder:
    """Grows one statement clause by clause, tracking scope."""

    def __init__(self, rng: random.Random, dialect: Dialect):
        self.rng = rng
        self.dialect = dialect
        self.env = _Env()

    # -- expressions ----------------------------------------------------

    def int_expr(self, depth: int = 0) -> ast.Expression:
        rng = self.rng
        leafs = ["literal"]
        if self.env.nodes:
            leafs += ["prop", "prop", "prop"]
        if self.env.values:
            leafs += ["value", "value"]
        if depth < 2 and rng.random() < 0.45:
            operator = rng.choice(["+", "-", "*", "%"])
            return ast.Binary(
                operator,
                self.int_expr(depth + 1),
                self.int_expr(depth + 1),
            )
        if depth < 2 and rng.random() < 0.1:
            return ast.FunctionCall(
                "coalesce",
                (self.int_expr(depth + 1), ast.Literal(rng.randint(0, 4))),
            )
        if depth < 2 and rng.random() < 0.08:
            return self.edge_int_expr(depth)
        choice = rng.choice(leafs)
        if choice == "prop":
            return ast.Property(
                ast.Variable(rng.choice(self.env.nodes)),
                rng.choice(INT_KEYS),
            )
        if choice == "value":
            return ast.Variable(rng.choice(self.env.values))
        return ast.Literal(rng.randint(0, 5))

    def edge_int_expr(self, depth: int = 0) -> ast.Expression:
        """Integer shapes probing the fixed evaluator edges.

        ``reduce`` sums, ``abs`` (occasionally at the int64 boundary,
        where it must raise the overflow error), ``size``-of-
        ``substring``/``left``/``right`` with occasionally negative
        arguments (which must raise, not wrap around), plus the
        scalar fixes that shipped with the server: ``size(split(s,
        sep))`` with the empty separator (character explosion, not a
        leaked ``ValueError``), ``toInteger(round(x))`` at the
        half-up precision edges, and ``size(range(...))`` straddling
        the list-length cap (the oversized form must raise the
        resource-limit error, never materialise) -- every surface has
        to agree on value *and* error class.

        The overflow fixes add their own family: ``toInteger`` past
        int64 (must raise the overflow error on the float *and* the
        string path), ``exp`` saturation to Infinity (never a raw
        ``OverflowError``), ``toString``/``ceil``/``floor`` on
        non-finite floats.
        """
        rng = self.rng
        roll = rng.random()
        if roll < 0.12:
            pick = rng.randrange(4)
            if pick == 0:
                # toInteger outside int64: overflow error, not a
                # 2048-bit Python int (nor a leaked OverflowError on
                # the '1e999' -> inf string path, which is null)
                argument: ast.Expression = ast.Literal(
                    rng.choice(
                        [1e300, "1e300", "123456789012345678901234567890"]
                    )
                )
                if rng.random() < 0.3:
                    return ast.FunctionCall(
                        "coalesce",
                        (
                            ast.FunctionCall(
                                "tointeger", (ast.Literal("1e999"),)
                            ),
                            ast.Literal(0),
                        ),
                    )
                return ast.FunctionCall("tointeger", (argument,))
            inf: ast.Expression = ast.Binary(
                "/", ast.Literal(1.0), ast.Literal(0.0)
            )
            if pick == 1:
                # exp saturates to Infinity; toInteger(Infinity) is
                # null, so coalesce keeps the shape integer-typed
                inner = ast.FunctionCall(
                    "exp",
                    (ast.Literal(rng.choice([746.0, 0.0, 1.0, 1000.0])),),
                )
                return ast.FunctionCall(
                    "coalesce",
                    (
                        ast.FunctionCall("tointeger", (inner,)),
                        ast.Literal(0),
                    ),
                )
            if pick == 2:
                # Cypher spellings of non-finite floats, measured by
                # size: Infinity=8, -Infinity=9, NaN=3
                value = (
                    inf
                    if rng.random() < 0.6
                    else ast.Binary("/", ast.Literal(0.0), ast.Literal(0.0))
                )
                if rng.random() < 0.3:
                    value = ast.Unary("-", value)
                return ast.FunctionCall(
                    "size", (ast.FunctionCall("tostring", (value,)),)
                )
            # ceil/floor pass non-finite through instead of leaking a
            # raw ValueError/OverflowError from math.ceil/floor
            inner = ast.FunctionCall(rng.choice(["ceil", "floor"]), (inf,))
            return ast.FunctionCall(
                "coalesce",
                (
                    ast.FunctionCall("tointeger", (inner,)),
                    ast.Literal(0),
                ),
            )
        if roll < 0.24:
            # split with an occasionally empty separator
            separator = rng.choice(["", "", ",", "a"])
            return ast.FunctionCall(
                "size",
                (
                    ast.FunctionCall(
                        "split",
                        (
                            ast.Literal(rng.choice(STRINGS)),
                            ast.Literal(separator),
                        ),
                    ),
                ),
            )
        if roll < 0.36:
            # round at the half-up edges; toInteger keeps the shape
            # integer-typed for the surrounding expression
            value = rng.choice(
                [0.5, 2.5, -0.5, -1.5, 0.49999999999999994, 1.5, -2.5]
            )
            # negative literals must be unary-minus trees or the
            # parse(unparse(ast)) round-trip would not be identity
            argument: ast.Expression = (
                ast.Unary("-", ast.Literal(-value))
                if value < 0
                else ast.Literal(value)
            )
            return ast.FunctionCall(
                "tointeger",
                (ast.FunctionCall("round", (argument,)),),
            )
        if roll < 0.46:
            # range under or over the materialisation cap
            if rng.random() < 0.3:
                bounds = (
                    ast.Literal(0),
                    ast.Literal(10_000_000_000),
                )
            else:
                bounds = (
                    ast.Literal(rng.randint(0, 3)),
                    ast.Literal(rng.randint(0, 6)),
                )
            return ast.FunctionCall(
                "size", (ast.FunctionCall("range", bounds),)
            )
        if roll < 0.62:
            items = tuple(
                ast.Literal(rng.randint(0, 4))
                for __ in range(rng.randint(0, 3))
            )
            return ast.Reduce(
                accumulator="acc0",
                init=ast.Literal(rng.randint(0, 2)),
                variable="el0",
                source=ast.ListLiteral(items),
                expression=ast.Binary(
                    rng.choice(["+", "*"]),
                    ast.Variable("acc0"),
                    ast.Variable("el0"),
                ),
            )
        if roll < 0.8:
            if rng.random() < 0.2:
                # abs at INT64_MIN: (-9223372036854775807) - 1 is the
                # smallest legal integer; abs of it must overflow.
                argument: ast.Expression = ast.Binary(
                    "-",
                    ast.Unary("-", ast.Literal(9223372036854775807)),
                    ast.Literal(1),
                )
            else:
                argument = self.int_expr(depth + 1)
            return ast.FunctionCall("abs", (argument,))
        name = rng.choice(["substring", "left", "right"])
        length: ast.Expression = ast.Literal(rng.randint(0, 4))
        if rng.random() < 0.25:
            length = ast.Unary("-", ast.Literal(rng.randint(1, 3)))
        args: tuple[ast.Expression, ...]
        if name == "substring" and rng.random() < 0.5:
            args = (
                ast.Literal(rng.choice(STRINGS)),
                length,
                ast.Literal(rng.randint(0, 3)),
            )
        else:
            args = (ast.Literal(rng.choice(STRINGS)), length)
        return ast.FunctionCall(
            "size", (ast.FunctionCall(name, args),)
        )

    def any_expr(self) -> ast.Expression:
        rng = self.rng
        roll = rng.random()
        if roll < 0.55:
            return self.int_expr()
        if roll < 0.7:
            return ast.Literal(rng.choice(STRINGS))
        if roll < 0.78:
            return ast.Literal(rng.choice([True, False, None]))
        if roll < 0.88 and self.env.nodes:
            return ast.Variable(rng.choice(self.env.nodes))
        if roll < 0.94:
            return ast.ListLiteral(
                tuple(
                    ast.Literal(rng.randint(0, 3))
                    for __ in range(rng.randint(0, 3))
                )
            )
        return ast.CaseExpression(
            operand=None,
            alternatives=(
                (
                    ast.Binary(">", self.int_expr(1), ast.Literal(1)),
                    self.int_expr(1),
                ),
            ),
            default=ast.Literal(0),
        )

    def predicate(self) -> ast.Expression:
        rng = self.rng
        roll = rng.random()
        if roll < 0.5:
            return ast.Binary(
                rng.choice(["=", "<>", "<", "<=", ">", ">="]),
                self.int_expr(1),
                self.int_expr(1),
            )
        if roll < 0.7 and self.env.nodes:
            return ast.IsNull(
                ast.Property(
                    ast.Variable(rng.choice(self.env.nodes)),
                    rng.choice(INT_KEYS),
                ),
                negated=rng.random() < 0.5,
            )
        if roll < 0.85 and self.env.nodes:
            return ast.HasLabels(
                ast.Variable(rng.choice(self.env.nodes)),
                (rng.choice(LABELS),),
            )
        return ast.Binary(
            rng.choice(["AND", "OR"]),
            ast.Binary(">=", self.int_expr(1), ast.Literal(0)),
            ast.Binary("<", self.int_expr(1), ast.Literal(9)),
        )

    def property_map(
        self, *, with_expressions: bool
    ) -> ast.MapLiteral | None:
        rng = self.rng
        if rng.random() < 0.35:
            return None
        items: list[tuple[str, ast.Expression]] = []
        for key in INT_KEYS:
            if rng.random() < 0.5:
                if with_expressions and rng.random() < 0.5:
                    items.append((key, self.int_expr(1)))
                else:
                    items.append((key, ast.Literal(rng.randint(0, 4))))
        if rng.random() < 0.15:
            items.append((STRING_KEY, ast.Literal(rng.choice(STRINGS))))
        if not items:
            return None
        return ast.MapLiteral(tuple(items))

    # -- patterns -------------------------------------------------------

    def _node_pattern(
        self, *, bind: bool, reuse_ok: bool, with_expressions: bool
    ) -> ast.NodePattern:
        rng = self.rng
        if reuse_ok and self.env.nodes and rng.random() < 0.18:
            # Re-using a bound node constrains the match / attaches the
            # entity; keep it bare, which is legal in every clause.
            return ast.NodePattern(variable=rng.choice(self.env.nodes))
        labels = tuple(
            sorted(label for label in LABELS if rng.random() < 0.3)
        )
        # Bind AFTER building the property map: in-pattern references
        # then only point backward, which the matcher resolves.  A small
        # fraction binds first, keeping the always-failing self-reference
        # shape in the corpus to exercise the error path.
        bind_first = bind and rng.random() < 0.05
        variable = None
        if bind_first:
            variable = self.env.fresh("n")
            self.env.nodes.append(variable)
        properties = self.property_map(with_expressions=with_expressions)
        if bind and not bind_first and rng.random() < 0.8:
            variable = self.env.fresh("n")
            self.env.nodes.append(variable)
        return ast.NodePattern(
            variable=variable,
            labels=labels,
            properties=properties,
        )

    def match_pattern(self) -> ast.Pattern:
        rng = self.rng
        paths = []
        for __ in range(1 if rng.random() < 0.75 else 2):
            elements: list = [
                self._node_pattern(
                    bind=True, reuse_ok=True, with_expressions=True
                )
            ]
            for __ in range(rng.randint(0, 2)):
                variable = None
                if rng.random() < 0.5:
                    variable = self.env.fresh("r")
                    self.env.rels.append(variable)
                types = tuple(
                    sorted(t for t in REL_TYPES if rng.random() < 0.45)
                )
                var_length = None
                if variable is None and rng.random() < 0.12:
                    lower = rng.randint(0, 1)
                    var_length = (lower, lower + rng.randint(0, 2))
                elements.append(
                    ast.RelationshipPattern(
                        variable=variable,
                        types=types,
                        direction=rng.choice(
                            [ast.OUT, ast.IN, ast.BOTH]
                        ),
                        var_length=var_length,
                    )
                )
                elements.append(
                    self._node_pattern(
                        bind=True, reuse_ok=True, with_expressions=True
                    )
                )
            path_variable = None
            if rng.random() < 0.1:
                path_variable = self.env.fresh("p")
                self.env.values.append(path_variable)
            paths.append(
                ast.PathPattern(
                    variable=path_variable, elements=tuple(elements)
                )
            )
        return ast.Pattern(paths=tuple(paths))

    def update_pattern(self, *, allow_undirected: bool) -> ast.Pattern:
        """A CREATE/MERGE pattern: directed, typed, no var-length."""
        rng = self.rng
        paths = []
        for __ in range(1 if rng.random() < 0.85 else 2):
            first = self._node_pattern(
                bind=True, reuse_ok=True, with_expressions=True
            )
            elements: list = [first]
            length = rng.randint(0, 2)
            if length == 0 and first.variable is None:
                # an anonymous single-node CREATE is legal but useless;
                # fine.  A *reused* single node is not a creation --
                # force a fresh variable instead.
                pass
            if length == 0 and first.variable in self.env.nodes[:-1]:
                # single-node path reusing a bound variable would
                # re-declare it; give the path one relationship.
                length = 1
            for __ in range(length):
                variable = None
                if rng.random() < 0.4:
                    variable = self.env.fresh("r")
                    self.env.rels.append(variable)
                direction = rng.choice([ast.OUT, ast.IN])
                if allow_undirected and rng.random() < 0.25:
                    direction = ast.BOTH
                elements.append(
                    ast.RelationshipPattern(
                        variable=variable,
                        types=(rng.choice(REL_TYPES),),
                        properties=self.property_map(with_expressions=True)
                        if rng.random() < 0.3
                        else None,
                        direction=direction,
                    )
                )
                elements.append(
                    self._node_pattern(
                        bind=True, reuse_ok=True, with_expressions=True
                    )
                )
            paths.append(ast.PathPattern(elements=tuple(elements)))
        return ast.Pattern(paths=tuple(paths))

    # -- clauses --------------------------------------------------------

    def match_clause(self) -> ast.MatchClause:
        pattern = self.match_pattern()
        where = self.predicate() if self.rng.random() < 0.4 else None
        return ast.MatchClause(
            pattern=pattern,
            optional=self.rng.random() < 0.2,
            where=where,
        )

    def unwind_clause(self) -> ast.UnwindClause:
        rng = self.rng
        variable = self.env.fresh("x")
        if rng.random() < 0.5:
            source: ast.Expression = ast.FunctionCall(
                "range",
                (ast.Literal(0), ast.Literal(rng.randint(0, 3))),
            )
        else:
            source = ast.ListLiteral(
                tuple(
                    ast.Literal(rng.randint(0, 4))
                    for __ in range(rng.randint(1, 4))
                )
            )
        self.env.values.append(variable)
        return ast.UnwindClause(expression=source, variable=variable)

    def create_clause(self) -> ast.CreateClause:
        return ast.CreateClause(
            pattern=self.update_pattern(allow_undirected=False)
        )

    def set_clause(self) -> ast.SetClause:
        rng = self.rng
        items: list[ast.SetItem] = []
        for __ in range(rng.randint(1, 2)):
            target = ast.Variable(rng.choice(self.env.nodes))
            roll = rng.random()
            if roll < 0.6:
                # Bias: the value reads properties of (possibly other)
                # matched nodes -- the Example 1/2 conflict shape.
                items.append(
                    ast.SetProperty(
                        target=ast.Property(target, rng.choice(INT_KEYS)),
                        value=self.int_expr()
                        if rng.random() < 0.8
                        else ast.Literal(None),
                    )
                )
            elif roll < 0.75:
                items.append(
                    ast.SetLabels(
                        target=target, labels=(rng.choice(LABELS),)
                    )
                )
            elif roll < 0.9:
                value = self.property_map(with_expressions=True)
                items.append(
                    ast.SetAdditiveProperties(
                        target=target,
                        value=value
                        if value is not None
                        else ast.MapLiteral(
                            (("i", ast.Literal(rng.randint(0, 4))),)
                        ),
                    )
                )
            else:
                value = self.property_map(with_expressions=True)
                items.append(
                    ast.SetAllProperties(
                        target=target,
                        value=value
                        if value is not None
                        else ast.MapLiteral(()),
                    )
                )
        return ast.SetClause(items=tuple(items))

    def remove_clause(self) -> ast.RemoveClause:
        rng = self.rng
        target = ast.Variable(rng.choice(self.env.nodes))
        if rng.random() < 0.5:
            item: ast.RemoveItem = ast.RemoveProperty(
                target=ast.Property(target, rng.choice(INT_KEYS))
            )
        else:
            item = ast.RemoveLabels(
                target=target, labels=(rng.choice(LABELS),)
            )
        return ast.RemoveClause(items=(item,))

    def delete_clause(self) -> ast.DeleteClause:
        rng = self.rng
        candidates = []
        if self.env.nodes:
            # Bias toward nodes: deleting a node that still has
            # relationships is the Section 4.2 anomaly shape.
            candidates += [rng.choice(self.env.nodes)] * 3
        if self.env.rels:
            candidates.append(rng.choice(self.env.rels))
        picks = sorted(
            {rng.choice(candidates) for __ in range(rng.randint(1, 2))}
        )
        return ast.DeleteClause(
            expressions=tuple(ast.Variable(name) for name in picks),
            detach=rng.random() < 0.45,
        )

    def merge_clause(self) -> ast.MergeClause:
        rng = self.rng
        if self.dialect is Dialect.CYPHER9:
            pattern = ast.Pattern(
                paths=(
                    self.update_pattern(allow_undirected=True).paths[0],
                )
            )
            on_create: tuple[ast.SetItem, ...] = ()
            on_match: tuple[ast.SetItem, ...] = ()
            merge_nodes = [
                element.variable
                for element in pattern.paths[0].elements
                if isinstance(element, ast.NodePattern)
                and element.variable is not None
            ]
            if merge_nodes and rng.random() < 0.4:
                on_create = (
                    ast.SetProperty(
                        target=ast.Property(
                            ast.Variable(rng.choice(merge_nodes)), "k"
                        ),
                        value=ast.Literal(rng.randint(0, 4)),
                    ),
                )
            if merge_nodes and rng.random() < 0.4:
                on_match = (
                    ast.SetProperty(
                        target=ast.Property(
                            ast.Variable(rng.choice(merge_nodes)), "i"
                        ),
                        value=self.int_expr(1),
                    ),
                )
            return ast.MergeClause(
                pattern=pattern,
                semantics=ast.MERGE_LEGACY,
                on_create=on_create,
                on_match=on_match,
            )
        semantics = rng.choice(
            [ast.MERGE_ALL, ast.MERGE_ALL, ast.MERGE_SAME, ast.MERGE_SAME]
            + [
                ast.MERGE_GROUPING,
                ast.MERGE_WEAK_COLLAPSE,
                ast.MERGE_COLLAPSE,
            ]
        )
        return ast.MergeClause(
            pattern=self.update_pattern(allow_undirected=False),
            semantics=semantics,
        )

    def foreach_clause(self) -> ast.ForeachClause:
        rng = self.rng
        variable = self.env.fresh("x")
        source = ast.ListLiteral(
            tuple(
                ast.Literal(rng.randint(0, 3))
                for __ in range(rng.randint(1, 3))
            )
        )
        inner = self.env.copy()
        inner.values.append(variable)
        saved, self.env = self.env, inner
        try:
            if self.env.nodes and rng.random() < 0.5:
                updates: tuple[ast.Clause, ...] = (
                    ast.SetClause(
                        items=(
                            ast.SetProperty(
                                target=ast.Property(
                                    ast.Variable(
                                        rng.choice(self.env.nodes)
                                    ),
                                    rng.choice(INT_KEYS),
                                ),
                                value=ast.Variable(variable),
                            ),
                        )
                    ),
                )
            else:
                updates = (
                    ast.CreateClause(
                        pattern=ast.Pattern(
                            paths=(
                                ast.PathPattern(
                                    elements=(
                                        ast.NodePattern(
                                            labels=(rng.choice(LABELS),),
                                            properties=ast.MapLiteral(
                                                (
                                                    (
                                                        "i",
                                                        ast.Variable(
                                                            variable
                                                        ),
                                                    ),
                                                )
                                            ),
                                        ),
                                    )
                                ),
                            )
                        )
                    ),
                )
        finally:
            self.env = saved
        return ast.ForeachClause(
            variable=variable, source=source, updates=updates
        )

    def with_clause(self) -> ast.WithClause:
        body = self._projection_body(is_with=True)
        where = None
        if self.rng.random() < 0.25:
            where = self.predicate()
        return ast.WithClause(body=body, where=where)

    def return_clause(self) -> ast.ReturnClause:
        return ast.ReturnClause(body=self._projection_body(is_with=False))

    def _projection_body(self, *, is_with: bool) -> ast.ProjectionBody:
        rng = self.rng
        items: list[ast.ProjectionItem] = []
        new_env = _Env(counter=self.env.counter)
        keep = [
            name
            for name in self.env.all_names()
            if rng.random() < (0.8 if is_with else 0.6)
        ]
        if is_with and not keep and self.env.all_names():
            keep = [rng.choice(self.env.all_names())]
        for name in keep:
            items.append(
                ast.ProjectionItem(ast.Variable(name), alias=name)
            )
            if name in self.env.nodes:
                new_env.nodes.append(name)
            elif name in self.env.rels:
                new_env.rels.append(name)
            else:
                new_env.values.append(name)
        for __ in range(rng.randint(0, 2)):
            alias = new_env.fresh("v")
            items.append(
                ast.ProjectionItem(self.any_expr(), alias=alias)
            )
            new_env.values.append(alias)
        if not is_with and rng.random() < 0.25:
            alias = new_env.fresh("c")
            items.append(ast.ProjectionItem(ast.CountStar(), alias=alias))
            new_env.values.append(alias)
        if not items:
            alias = new_env.fresh("v")
            items.append(
                ast.ProjectionItem(ast.Literal(1), alias=alias)
            )
            new_env.values.append(alias)
        order_by: tuple[ast.SortItem, ...] = ()
        aggregated = any(
            isinstance(item.expression, ast.CountStar) for item in items
        )
        if rng.random() < 0.25 and not aggregated:
            target = rng.choice(items)
            if not isinstance(target.expression, ast.CountStar):
                order_by = (
                    ast.SortItem(
                        ast.Variable(target.alias),
                        ascending=rng.random() < 0.7,
                    ),
                )
        limit = None
        if order_by and rng.random() < 0.5:
            limit = ast.Literal(rng.randint(1, 5))
        body = ast.ProjectionBody(
            items=tuple(items),
            distinct=rng.random() < 0.15,
            order_by=order_by,
            limit=limit,
        )
        self.env = new_env
        return body

    # -- whole statements ----------------------------------------------

    def statement(self) -> ast.Statement:
        if self.dialect is Dialect.CYPHER9:
            clauses = self._legacy_clauses()
        else:
            clauses = self._revised_clauses()
        return ast.Statement(query=ast.SingleQuery(clauses=tuple(clauses)))

    def _revised_clauses(self) -> list[ast.Clause]:
        rng = self.rng
        clauses: list[ast.Clause] = []
        for __ in range(rng.randint(1, 5)):
            choices = ["match", "unwind", "create", "merge"]
            if self.env.nodes:
                choices += ["set", "set", "remove", "delete", "foreach"]
            if self.env.all_names() and rng.random() < 0.2:
                choices.append("with")
            clauses.append(self._clause_named(rng.choice(choices)))
        # Figure 10 requires a query to end with RETURN or an update
        # clause; a trailing reading clause is a syntax error.
        if rng.random() < 0.7 or ast.is_reading_clause(clauses[-1]) \
                or isinstance(clauses[-1], ast.WithClause):
            clauses.append(self.return_clause())
        return clauses

    def _legacy_clauses(self) -> list[ast.Clause]:
        """Figure 2 shape: (reading* update*)+ with WITH separators."""
        rng = self.rng
        clauses: list[ast.Clause] = []
        for segment in range(rng.randint(1, 2)):
            if segment:
                clauses.append(self.with_clause())
            for __ in range(rng.randint(0, 2)):
                clauses.append(
                    self.match_clause()
                    if rng.random() < 0.75
                    else self.unwind_clause()
                )
            update_choices = ["create", "merge"]
            if self.env.nodes:
                update_choices += ["set", "set", "remove", "delete", "foreach"]
            for __ in range(rng.randint(0, 3)):
                clauses.append(
                    self._clause_named(rng.choice(update_choices))
                )
        if not clauses:
            clauses.append(self.match_clause())
        if rng.random() < 0.7 or ast.is_reading_clause(clauses[-1]) \
                or isinstance(clauses[-1], ast.WithClause):
            clauses.append(self.return_clause())
        return clauses

    # -- read-only statements (registered views) ------------------------

    def read_statement(self) -> ast.Statement:
        """A read-only MATCH/WHERE/WITH/RETURN statement.

        Expressions stay *total* (comparisons, IS NULL, label checks,
        literal property maps): a registered view is re-evaluated after
        every committed statement, so a predicate that can raise (say
        ``% 0``) would turn graph evolution into spurious errors
        instead of result divergence.
        """
        rng = self.rng
        clauses: list[ast.Clause] = []
        if rng.random() < 0.1:
            clauses.append(self.unwind_clause())
        clauses.append(self._read_match())
        if rng.random() < 0.15:
            clauses.append(self._read_match())
        if rng.random() < 0.2 and self.env.all_names():
            where = self._tame_predicate() if rng.random() < 0.4 else None
            clauses.append(
                ast.WithClause(
                    body=self._tame_body(is_with=True), where=where
                )
            )
        clauses.append(
            ast.ReturnClause(body=self._tame_body(is_with=False))
        )
        return ast.Statement(
            query=ast.SingleQuery(clauses=tuple(clauses))
        )

    def _read_match(self) -> ast.MatchClause:
        rng = self.rng
        elements: list = [
            self._node_pattern(
                bind=True, reuse_ok=True, with_expressions=False
            )
        ]
        for __ in range(rng.randint(0, 2)):
            variable = None
            if rng.random() < 0.6:
                variable = self.env.fresh("r")
                self.env.rels.append(variable)
            var_length = None
            if variable is None and rng.random() < 0.25:
                lower = rng.randint(0, 1)
                var_length = (lower, lower + rng.randint(0, 2))
            elements.append(
                ast.RelationshipPattern(
                    variable=variable,
                    types=tuple(
                        sorted(
                            t for t in REL_TYPES if rng.random() < 0.45
                        )
                    ),
                    direction=rng.choice([ast.OUT, ast.IN, ast.BOTH]),
                    var_length=var_length,
                )
            )
            elements.append(
                self._node_pattern(
                    bind=True, reuse_ok=True, with_expressions=False
                )
            )
        where = self._tame_predicate() if rng.random() < 0.45 else None
        return ast.MatchClause(
            pattern=ast.Pattern(
                paths=(ast.PathPattern(elements=tuple(elements)),)
            ),
            optional=rng.random() < 0.12,
            where=where,
        )

    def _tame_predicate(self) -> ast.Expression:
        rng = self.rng
        roll = rng.random()
        if self.env.nodes and roll < 0.5:
            return ast.Binary(
                rng.choice(["=", "<>", "<", "<=", ">", ">="]),
                ast.Property(
                    ast.Variable(rng.choice(self.env.nodes)),
                    rng.choice(INT_KEYS),
                ),
                ast.Literal(rng.randint(0, 4)),
            )
        if self.env.nodes and roll < 0.75:
            return ast.IsNull(
                ast.Property(
                    ast.Variable(rng.choice(self.env.nodes)),
                    rng.choice(INT_KEYS),
                ),
                negated=rng.random() < 0.5,
            )
        if self.env.nodes:
            return ast.HasLabels(
                ast.Variable(rng.choice(self.env.nodes)),
                (rng.choice(LABELS),),
            )
        return ast.Literal(True)

    def _tame_body(self, *, is_with: bool) -> ast.ProjectionBody:
        rng = self.rng
        items: list[ast.ProjectionItem] = []
        new_env = _Env(counter=self.env.counter)
        names = self.env.all_names()
        keep = [name for name in names if rng.random() < 0.7]
        if not keep and names:
            keep = [rng.choice(names)]
        for name in keep:
            items.append(
                ast.ProjectionItem(ast.Variable(name), alias=name)
            )
            if name in self.env.nodes:
                new_env.nodes.append(name)
            elif name in self.env.rels:
                new_env.rels.append(name)
            else:
                new_env.values.append(name)
        for __ in range(rng.randint(0, 2)):
            if self.env.nodes and rng.random() < 0.8:
                alias = new_env.fresh("v")
                items.append(
                    ast.ProjectionItem(
                        ast.Property(
                            ast.Variable(rng.choice(self.env.nodes)),
                            rng.choice(INT_KEYS + (STRING_KEY,)),
                        ),
                        alias=alias,
                    )
                )
                new_env.values.append(alias)
        aggregated = False
        if not is_with and rng.random() < 0.15:
            alias = new_env.fresh("c")
            items.append(
                ast.ProjectionItem(ast.CountStar(), alias=alias)
            )
            new_env.values.append(alias)
            aggregated = True
        if not items:
            alias = new_env.fresh("v")
            items.append(ast.ProjectionItem(ast.Literal(1), alias=alias))
            new_env.values.append(alias)
        order_by: tuple[ast.SortItem, ...] = ()
        sortable = [
            item.alias
            for item in items
            if item.alias in new_env.values
            and not isinstance(item.expression, ast.CountStar)
        ]
        if sortable and not aggregated and rng.random() < 0.3:
            order_by = (
                ast.SortItem(
                    ast.Variable(rng.choice(sortable)),
                    ascending=rng.random() < 0.7,
                ),
            )
        limit = None
        if order_by and rng.random() < 0.4:
            limit = ast.Literal(rng.randint(1, 5))
        body = ast.ProjectionBody(
            items=tuple(items),
            distinct=rng.random() < 0.15,
            order_by=order_by,
            limit=limit,
        )
        self.env = new_env
        return body

    def _clause_named(self, name: str) -> ast.Clause:
        if name == "match":
            return self.match_clause()
        if name == "unwind":
            return self.unwind_clause()
        if name == "create":
            return self.create_clause()
        if name == "merge":
            return self.merge_clause()
        if name == "set":
            return self.set_clause()
        if name == "remove":
            return self.remove_clause()
        if name == "delete":
            return self.delete_clause()
        if name == "foreach":
            return self.foreach_clause()
        if name == "with":
            return self.with_clause()
        raise AssertionError(f"unknown clause kind {name}")
