"""Crash-injection testing for the write-ahead log.

Runs a seeded update workload against a durable graph while recording,
for every WAL record, the canonical graph JSON of the committed state
it completes.  Then it simulates a crash at **every record boundary**
-- recovery sees only the first *k* records -- plus *torn-tail*
variants where a partial (or corrupt) record follows the boundary, and
asserts two oracles on every recovered store:

* **byte identity** -- the recovered graph's canonical JSON equals the
  last committed pre-crash state (statement atomicity survives the
  crash: a half-written record never happened);
* **invariants** -- the full store-invariant oracle
  (:func:`repro.testing.invariants.check_invariants`) passes.

The workload mixes the shapes the journal can produce: creates,
property sets and removals, label changes, deletes (plain and DETACH),
MERGE, schema commands, rolled-back statements (which must never reach
the log) and multi-statement transactions (committed and rolled back).

:func:`run_checkpoint_crash_scenario` extends the same treatment to
the **streaming checkpoint**: the workload checkpoints mid-stream,
then the scenario kills the checkpoint *write* at every streaming-
record boundary (a torn ``checkpoint.json.tmp`` next to the full WAL
-- recovery must ignore it and replay the log) and, separately,
presents a torn or corrupt ``checkpoint.json`` (which the atomic
rename makes impossible, so recovery must fail loudly rather than
return a silently wrong graph).
"""

from __future__ import annotations

import random
import shutil
import struct
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CypherError, PersistenceError
from repro.graph.store import GraphStore
from repro.persistence import PersistenceManager, decode_records
from repro.persistence.checkpoint import (
    CHECKPOINT_NAME,
    WAL_NAME,
    checkpoint_record_boundaries,
)
from repro.session import Graph
from repro.testing.invariants import (
    InvariantViolation,
    canonical_graph_json,
    check_invariants,
)


@dataclass
class CrashReport:
    """Outcome of one crash-injection scenario."""

    seed: int
    statements_run: int = 0
    records_written: int = 0
    kill_points: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def scenario_statements(seed: int, count: int = 20) -> list[str]:
    """A deterministic update workload for crash injection."""
    rng = random.Random(f"crash:{seed}")
    labels = ["Person", "Item", "Tag"]
    statements: list[str] = []
    for index in range(count):
        roll = rng.random()
        label = rng.choice(labels)
        if roll < 0.30 or index < 3:
            statements.append(
                f"CREATE (:{label} {{k: {index}, "
                f"v: {rng.randint(0, 9)}}})"
            )
        elif roll < 0.45:
            statements.append(
                f"MATCH (n:{label}) SET n.v = n.k + {rng.randint(1, 5)}, "
                f"n.w = {rng.random():.3f}"
            )
        elif roll < 0.55:
            statements.append(f"MATCH (n:{label}) REMOVE n.w SET n:Extra")
        elif roll < 0.65:
            other = rng.choice(labels)
            statements.append(
                f"MATCH (a:{label}), (b:{other}) WHERE a.k < b.k "
                f"CREATE (a)-[:REL {{d: a.k}}]->(b)"
            )
        elif roll < 0.72:
            statements.append(
                f"MATCH (n:{label}) WHERE n.k = {rng.randint(0, count)} "
                f"DETACH DELETE n"
            )
        elif roll < 0.80:
            statements.append(
                f"MERGE ALL (:{label} {{k: {rng.randint(0, 5)}}})"
            )
        elif roll < 0.88:
            statements.append(f"CREATE INDEX ON :{label}(k)")
        else:
            # Guaranteed failure: must roll back and never hit the log.
            statements.append(
                f"MATCH (n:{label}) SET n.bad = n.k / 0"
            )
    return statements


def _recover_prefix(
    source_wal: bytes, directory: Path, length: int
) -> GraphStore:
    """Recover a store from the first *length* bytes of the WAL."""
    directory.mkdir(parents=True, exist_ok=True)
    (directory / WAL_NAME).write_bytes(source_wal[:length])
    store = GraphStore()
    manager = PersistenceManager(directory)
    manager.recover(store, verify=False)
    return store


def run_crash_scenario(
    seed: int,
    directory: Path | str,
    *,
    statements: list[str] | None = None,
    fsync: str = "off",
    torn_variants: bool = True,
) -> CrashReport:
    """Execute one workload, then kill recovery at every boundary."""
    base = Path(directory)
    live = base / "live"
    if live.exists():
        shutil.rmtree(live)
    report = CrashReport(seed=seed)
    todo = (
        statements if statements is not None else scenario_statements(seed)
    )

    graph = Graph(path=live, fsync=fsync, extended_merge=True)
    wal_path = live / WAL_NAME
    # canonical JSON of the committed state after each statement, paired
    # with the WAL record count at that point
    timeline: list[tuple[int, str]] = [(0, canonical_graph_json(graph.store))]
    for statement in todo:
        try:
            graph.run(statement)
        except CypherError:
            pass  # rolled back; must not have logged anything
        report.statements_run += 1
        records, clean, __ = _decode_file(wal_path)
        timeline.append((len(records), canonical_graph_json(graph.store)))
    graph.close()

    wal_bytes = wal_path.read_bytes()
    records, clean, total = _decode_file(wal_path)
    report.records_written = len(records)
    if clean != total:
        report.failures.append(
            f"live WAL has a dirty tail ({total - clean} bytes) "
            f"without any crash"
        )
    boundaries = _record_boundaries(wal_bytes)

    def expected_json(record_count: int) -> str:
        # The committed state a prefix of record_count records encodes:
        # the last statement whose records all fit in the prefix.
        # (Data statements are single-record; only schema statements
        # can emit several records, and those never change the graph
        # JSON, so the straddling case is covered too.)
        best = timeline[0][1]
        for count, snapshot in timeline:
            if count <= record_count:
                best = snapshot
        return best

    scratch = base / "scratch"
    for k, boundary in enumerate(boundaries):
        cut_points = [(f"boundary[{k}]", boundary)]
        if torn_variants and k < len(records):
            next_boundary = boundaries[k + 1]
            torn = boundary + max(1, (next_boundary - boundary) // 2)
            if torn < next_boundary:
                cut_points.append((f"torn[{k}]", torn))
        for name, cut in cut_points:
            if scratch.exists():
                shutil.rmtree(scratch)
            report.kill_points += 1
            try:
                store = _recover_prefix(wal_bytes, scratch, cut)
            except Exception as error:  # noqa: BLE001 -- findings
                report.failures.append(
                    f"[{name}] recovery crashed: "
                    f"{type(error).__name__}: {error}"
                )
                continue
            recovered = canonical_graph_json(store)
            wanted = expected_json(k)
            if recovered != wanted:
                report.failures.append(
                    f"[{name}] recovered graph differs from the last "
                    f"committed pre-crash state"
                )
            try:
                check_invariants(store)
            except InvariantViolation as violation:
                report.failures.append(
                    f"[{name}] recovered store invariants: {violation}"
                )

    # Corrupt-checksum variant: flip one byte inside the last record's
    # payload; recovery must treat everything from there on as torn.
    if records and torn_variants:
        report.kill_points += 1
        corrupt = bytearray(wal_bytes)
        corrupt[boundaries[-2] + 8] ^= 0xFF
        if scratch.exists():
            shutil.rmtree(scratch)
        try:
            store = _recover_prefix(bytes(corrupt), scratch, len(corrupt))
        except Exception as error:  # noqa: BLE001 -- findings
            report.failures.append(
                f"[corrupt] recovery crashed: "
                f"{type(error).__name__}: {error}"
            )
        else:
            if canonical_graph_json(store) != expected_json(
                len(records) - 1
            ):
                report.failures.append(
                    "[corrupt] corrupt record was not discarded"
                )
    return report


def run_checkpoint_crash_scenario(
    seed: int,
    directory: Path | str,
    *,
    statements: list[str] | None = None,
    fsync: str = "off",
) -> CrashReport:
    """Kill the streaming checkpoint at every record boundary.

    Runs half the workload, checkpoints (streaming format 2), runs the
    rest, then asserts:

    * full recovery (checkpoint + WAL suffix) is byte-identical to the
      final committed state;
    * a crash *during* the checkpoint write -- a torn ``.tmp`` file
      truncated at every streaming-record boundary (and mid-record)
      beside the full pre-checkpoint WAL -- recovers the exact
      checkpoint-time state, ignoring the temp file;
    * a torn or corrupt ``checkpoint.json`` itself (impossible under
      the atomic-rename contract) raises :class:`PersistenceError`
      instead of silently recovering a wrong graph.
    """
    base = Path(directory)
    live = base / "live"
    if live.exists():
        shutil.rmtree(live)
    report = CrashReport(seed=seed)
    todo = (
        statements if statements is not None else scenario_statements(seed)
    )
    half = max(1, len(todo) // 2)

    graph = Graph(path=live, fsync=fsync, extended_merge=True)
    for statement in todo[:half]:
        try:
            graph.run(statement)
        except CypherError:
            pass
        report.statements_run += 1
    # WAL as it stands the instant before the checkpoint: a crash
    # before the atomic rename leaves exactly this plus a torn .tmp.
    pre_checkpoint_wal = (live / WAL_NAME).read_bytes()
    graph.checkpoint()
    checkpoint_state = canonical_graph_json(graph.store)
    for statement in todo[half:]:
        try:
            graph.run(statement)
        except CypherError:
            pass
        report.statements_run += 1
    final_state = canonical_graph_json(graph.store)
    graph.close()

    checkpoint_path = live / CHECKPOINT_NAME
    checkpoint_bytes = checkpoint_path.read_bytes()
    wal_suffix = (live / WAL_NAME).read_bytes()
    records, __ = decode_records(wal_suffix)
    report.records_written = len(records)
    boundaries = checkpoint_record_boundaries(checkpoint_path)

    scratch = base / "scratch"

    def recover_dir(
        checkpoint: bytes | None,
        wal: bytes,
        tmp: bytes | None = None,
    ) -> GraphStore:
        if scratch.exists():
            shutil.rmtree(scratch)
        scratch.mkdir(parents=True)
        if checkpoint is not None:
            (scratch / CHECKPOINT_NAME).write_bytes(checkpoint)
        if tmp is not None:
            (scratch / (CHECKPOINT_NAME + ".tmp")).write_bytes(tmp)
        (scratch / WAL_NAME).write_bytes(wal)
        store = GraphStore()
        PersistenceManager(scratch).recover(store, verify=False)
        return store

    # Oracle 1: the intact pair replays to the final committed state.
    report.kill_points += 1
    try:
        store = recover_dir(checkpoint_bytes, wal_suffix)
        if canonical_graph_json(store) != final_state:
            report.failures.append(
                "[intact] checkpoint + WAL suffix differs from the "
                "final committed state"
            )
        check_invariants(store)
    except (Exception, InvariantViolation) as error:  # noqa: BLE001
        report.failures.append(
            f"[intact] recovery crashed: {type(error).__name__}: {error}"
        )

    # Oracle 2: crash during the write -- torn .tmp at every streaming
    # record boundary (plus a mid-record cut), full WAL still present.
    for k, boundary in enumerate(boundaries):
        cuts = [(f"tmp-boundary[{k}]", boundary)]
        if k + 1 < len(boundaries):
            middle = boundary + max(
                1, (boundaries[k + 1] - boundary) // 2
            )
            if middle < boundaries[k + 1]:
                cuts.append((f"tmp-torn[{k}]", middle))
        for name, cut in cuts:
            report.kill_points += 1
            try:
                store = recover_dir(
                    None, pre_checkpoint_wal, tmp=checkpoint_bytes[:cut]
                )
            except Exception as error:  # noqa: BLE001 -- findings
                report.failures.append(
                    f"[{name}] recovery crashed: "
                    f"{type(error).__name__}: {error}"
                )
                continue
            if canonical_graph_json(store) != checkpoint_state:
                report.failures.append(
                    f"[{name}] torn .tmp changed the recovered state"
                )
            try:
                check_invariants(store)
            except InvariantViolation as violation:
                report.failures.append(
                    f"[{name}] recovered store invariants: {violation}"
                )

    # Oracle 3: a torn checkpoint.json must fail loudly, never recover
    # a silently wrong graph (every proper prefix, boundary and torn).
    for k, boundary in enumerate(boundaries):
        cuts = []
        if boundary < len(checkpoint_bytes):
            cuts.append((f"checkpoint-boundary[{k}]", boundary))
        if k + 1 < len(boundaries):
            middle = boundary + max(
                1, (boundaries[k + 1] - boundary) // 2
            )
            if middle < boundaries[k + 1]:
                cuts.append((f"checkpoint-torn[{k}]", middle))
        for name, cut in cuts:
            report.kill_points += 1
            try:
                recover_dir(checkpoint_bytes[:cut], wal_suffix)
            except PersistenceError:
                continue  # the loud failure we demand
            except Exception as error:  # noqa: BLE001 -- findings
                report.failures.append(
                    f"[{name}] wrong error class: "
                    f"{type(error).__name__}: {error}"
                )
            else:
                report.failures.append(
                    f"[{name}] torn checkpoint accepted silently"
                )

    # Oracle 4: a corrupt record payload must fail loudly too.
    if len(boundaries) >= 2:
        report.kill_points += 1
        corrupt = bytearray(checkpoint_bytes)
        corrupt[boundaries[-2] + 8] ^= 0xFF
        try:
            recover_dir(bytes(corrupt), wal_suffix)
        except PersistenceError:
            pass
        except Exception as error:  # noqa: BLE001 -- findings
            report.failures.append(
                f"[corrupt-checkpoint] wrong error class: "
                f"{type(error).__name__}: {error}"
            )
        else:
            report.failures.append(
                "[corrupt-checkpoint] corrupt record accepted silently"
            )
    return report


def _decode_file(path: Path):
    if not path.exists():
        return [], 0, 0
    data = path.read_bytes()
    records, clean = decode_records(data)
    return records, clean, len(data)


def _record_boundaries(data: bytes) -> list[int]:
    """Byte offsets of every record boundary, starting at 0."""
    records, clean = decode_records(data)
    boundaries = [0]
    offset = 0
    header = struct.Struct(">II")
    while offset + header.size <= clean:
        length, __ = header.unpack_from(data, offset)
        offset += header.size + length
        boundaries.append(offset)
    return boundaries
