"""Greedy minimisation of failing fuzz cases.

Given a :class:`~repro.testing.generator.FuzzCase` whose differential
run fails, :func:`shrink` repeatedly tries structure-removing rewrites
-- drop a statement, drop a clause, drop a pattern path, shorten a
path, drop a SET/REMOVE/DELETE/projection item, drop a property-map
entry, replace an expression by one of its children or a literal, drop
a graph node (with its incident relationships), drop a relationship,
drop a driving-table row -- and keeps any rewrite after which the case
*still fails*.  The loop runs to a fixpoint or until the evaluation
budget is exhausted; iterated child-replacement reaches arbitrarily
deep expressions one level per pass.

Candidates must remain well-formed: every statement is unparsed and
re-parsed under the case's dialect (so the shrunk bundle is replayable
from its text) and re-checked for scope validity.  Invalid candidates
are discarded without spending budget.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from repro.dialect import Dialect
from repro.parser import ast
from repro.runtime.scoping import check_statement
from repro.testing.generator import FuzzCase


def shrink(
    case: FuzzCase,
    is_failing: Callable[[FuzzCase], bool] | None = None,
    *,
    budget: int = 400,
) -> FuzzCase:
    """The smallest still-failing case greedy search finds.

    *is_failing* defaults to "``run_case`` reports any failure"; pass a
    stricter predicate to shrink toward one specific failure.  At most
    *budget* candidate evaluations are spent.
    """
    if is_failing is None:
        from repro.testing.differential import run_case

        def is_failing(candidate: FuzzCase) -> bool:
            try:
                return not run_case(candidate).ok
            except Exception:
                return True  # a crash in the harness still reproduces

    spent = 0
    current = case
    progress = True
    while progress and spent < budget:
        progress = False
        for candidate in _candidates(current):
            if spent >= budget:
                break
            if not _valid(candidate):
                continue
            spent += 1
            if is_failing(candidate):
                current = candidate
                progress = True
                break
    return current


def _valid(case: FuzzCase) -> bool:
    """Replayable: statements survive unparse -> parse and scope-check."""
    from repro.parser.parser import parse
    from repro.parser.unparse import unparse

    dialect = Dialect.parse(case.dialect)
    for statement in case.statements:
        try:
            reparsed = parse(
                unparse(statement), dialect, extended_merge=True
            )
            check_statement(reparsed)
        except Exception:
            return False
    if case.kind == "merge" and not (
        case.merge_table and case.merge_table["records"]
    ):
        return False
    return True


# ---------------------------------------------------------------------------
# Candidate enumeration (ordered: biggest cuts first)
# ---------------------------------------------------------------------------


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    yield from _statement_level(case)
    yield from _graph_level(case)
    yield from _table_level(case)
    for index, statement in enumerate(case.statements):
        for smaller in _shrink_statement(statement):
            statements = (
                case.statements[:index]
                + (smaller,)
                + case.statements[index + 1 :]
            )
            yield dataclasses.replace(case, statements=statements)


def _statement_level(case: FuzzCase) -> Iterator[FuzzCase]:
    if len(case.statements) > 1:
        for index in range(len(case.statements)):
            yield dataclasses.replace(
                case,
                statements=case.statements[:index]
                + case.statements[index + 1 :],
            )


def _graph_level(case: FuzzCase) -> Iterator[FuzzCase]:
    graph = case.graph
    nodes = graph.get("nodes", [])
    rels = graph.get("relationships", [])
    for node in nodes:
        remaining = [n for n in nodes if n is not node]
        kept_rels = [
            r
            for r in rels
            if r["start"] != node["id"] and r["end"] != node["id"]
        ]
        yield dataclasses.replace(
            case, graph={"nodes": remaining, "relationships": kept_rels}
        )
    for rel in rels:
        yield dataclasses.replace(
            case,
            graph={
                "nodes": nodes,
                "relationships": [r for r in rels if r is not rel],
            },
        )
    for index, node in enumerate(nodes):
        if node.get("properties"):
            stripped = dict(node, properties={})
            yield dataclasses.replace(
                case,
                graph={
                    "nodes": nodes[:index] + [stripped] + nodes[index + 1 :],
                    "relationships": rels,
                },
            )
        if node.get("labels"):
            stripped = dict(node, labels=[])
            yield dataclasses.replace(
                case,
                graph={
                    "nodes": nodes[:index] + [stripped] + nodes[index + 1 :],
                    "relationships": rels,
                },
            )
    if case.indexes:
        for index in range(len(case.indexes)):
            yield dataclasses.replace(
                case,
                indexes=case.indexes[:index] + case.indexes[index + 1 :],
            )


def _table_level(case: FuzzCase) -> Iterator[FuzzCase]:
    if case.kind != "merge" or not case.merge_table:
        return
    records = case.merge_table["records"]
    if len(records) > 1:
        for index in range(len(records)):
            yield dataclasses.replace(
                case,
                merge_table={
                    "columns": case.merge_table["columns"],
                    "records": records[:index] + records[index + 1 :],
                },
            )


# ---------------------------------------------------------------------------
# Statement rewrites
# ---------------------------------------------------------------------------


def _shrink_statement(statement: ast.Statement) -> Iterator[ast.Statement]:
    if not isinstance(statement.query, ast.SingleQuery):
        return  # UNION never generated; don't bother rebuilding trees
    clauses = statement.query.clauses
    if len(clauses) > 1:
        for index in range(len(clauses)):
            yield _with_clauses(
                statement, clauses[:index] + clauses[index + 1 :]
            )
    for index, clause in enumerate(clauses):
        for smaller in _shrink_clause(clause):
            yield _with_clauses(
                statement,
                clauses[:index] + (smaller,) + clauses[index + 1 :],
            )


def _with_clauses(
    statement: ast.Statement, clauses: tuple[ast.Clause, ...]
) -> ast.Statement:
    return dataclasses.replace(
        statement,
        query=ast.SingleQuery(clauses=clauses),
        source="",
    )


def _shrink_clause(clause: ast.Clause) -> Iterator[ast.Clause]:
    if isinstance(clause, ast.MatchClause):
        if clause.where is not None:
            yield dataclasses.replace(clause, where=None)
            for child in _expression_children(clause.where):
                yield dataclasses.replace(clause, where=child)
        if clause.optional:
            yield dataclasses.replace(clause, optional=False)
        for pattern in _shrink_pattern(clause.pattern, min_paths=1):
            yield dataclasses.replace(clause, pattern=pattern)
    elif isinstance(clause, (ast.CreateClause, ast.MergeClause)):
        for pattern in _shrink_pattern(clause.pattern, min_paths=1):
            yield dataclasses.replace(clause, pattern=pattern)
        if isinstance(clause, ast.MergeClause):
            if clause.on_create:
                yield dataclasses.replace(clause, on_create=())
            if clause.on_match:
                yield dataclasses.replace(clause, on_match=())
    elif isinstance(clause, ast.SetClause):
        if len(clause.items) > 1:
            for index in range(len(clause.items)):
                yield dataclasses.replace(
                    clause,
                    items=clause.items[:index] + clause.items[index + 1 :],
                )
        for index, item in enumerate(clause.items):
            for smaller in _shrink_set_item(item):
                yield dataclasses.replace(
                    clause,
                    items=clause.items[:index]
                    + (smaller,)
                    + clause.items[index + 1 :],
                )
    elif isinstance(clause, ast.RemoveClause):
        if len(clause.items) > 1:
            for index in range(len(clause.items)):
                yield dataclasses.replace(
                    clause,
                    items=clause.items[:index] + clause.items[index + 1 :],
                )
    elif isinstance(clause, ast.DeleteClause):
        if len(clause.expressions) > 1:
            for index in range(len(clause.expressions)):
                yield dataclasses.replace(
                    clause,
                    expressions=clause.expressions[:index]
                    + clause.expressions[index + 1 :],
                )
        if clause.detach:
            yield dataclasses.replace(clause, detach=False)
    elif isinstance(clause, (ast.WithClause, ast.ReturnClause)):
        for body in _shrink_body(clause.body, keep_one=True):
            yield dataclasses.replace(clause, body=body)
        if isinstance(clause, ast.WithClause) and clause.where is not None:
            yield dataclasses.replace(clause, where=None)
    elif isinstance(clause, ast.UnwindClause):
        for child in _expression_children(clause.expression):
            yield dataclasses.replace(clause, expression=child)
        yield dataclasses.replace(
            clause,
            expression=ast.ListLiteral((ast.Literal(0),)),
        )
    elif isinstance(clause, ast.ForeachClause):
        if len(clause.updates) > 1:
            for index in range(len(clause.updates)):
                yield dataclasses.replace(
                    clause,
                    updates=clause.updates[:index]
                    + clause.updates[index + 1 :],
                )
        for child in _expression_children(clause.source):
            yield dataclasses.replace(clause, source=child)


def _shrink_set_item(item: ast.SetItem) -> Iterator[ast.SetItem]:
    if isinstance(item, ast.SetProperty):
        for child in _expression_children(item.value):
            yield dataclasses.replace(item, value=child)
        yield dataclasses.replace(item, value=ast.Literal(0))
    elif isinstance(
        item, (ast.SetAllProperties, ast.SetAdditiveProperties)
    ) and isinstance(item.value, ast.MapLiteral):
        for smaller in _shrink_map(item.value, min_items=0):
            yield dataclasses.replace(item, value=smaller)


def _shrink_body(
    body: ast.ProjectionBody, *, keep_one: bool
) -> Iterator[ast.ProjectionBody]:
    floor = 1 if keep_one else 0
    if len(body.items) > floor:
        for index in range(len(body.items)):
            yield dataclasses.replace(
                body, items=body.items[:index] + body.items[index + 1 :]
            )
    if body.order_by:
        yield dataclasses.replace(body, order_by=(), limit=None, skip=None)
    if body.limit is not None:
        yield dataclasses.replace(body, limit=None)
    if body.distinct:
        yield dataclasses.replace(body, distinct=False)
    for index, item in enumerate(body.items):
        for child in _expression_children(item.expression):
            smaller = dataclasses.replace(item, expression=child)
            yield dataclasses.replace(
                body,
                items=body.items[:index]
                + (smaller,)
                + body.items[index + 1 :],
            )


def _shrink_pattern(
    pattern: ast.Pattern, *, min_paths: int
) -> Iterator[ast.Pattern]:
    if len(pattern.paths) > min_paths:
        for index in range(len(pattern.paths)):
            yield ast.Pattern(
                paths=pattern.paths[:index] + pattern.paths[index + 1 :]
            )
    for index, path in enumerate(pattern.paths):
        for smaller in _shrink_path(path):
            yield ast.Pattern(
                paths=pattern.paths[:index]
                + (smaller,)
                + pattern.paths[index + 1 :]
            )


def _shrink_path(path: ast.PathPattern) -> Iterator[ast.PathPattern]:
    # Drop trailing (and leading) rel+node pairs.
    if len(path.elements) > 2:
        yield dataclasses.replace(path, elements=path.elements[:-2])
        yield dataclasses.replace(path, elements=path.elements[2:])
    if path.variable is not None:
        yield dataclasses.replace(path, variable=None)
    for index, element in enumerate(path.elements):
        if (
            isinstance(element, (ast.NodePattern, ast.RelationshipPattern))
            and element.properties is not None
        ):
            for smaller_map in _shrink_map(element.properties, min_items=0):
                replacement = dataclasses.replace(
                    element,
                    properties=smaller_map
                    if smaller_map.items
                    else None,
                )
                yield dataclasses.replace(
                    path,
                    elements=path.elements[:index]
                    + (replacement,)
                    + path.elements[index + 1 :],
                )
        if isinstance(element, ast.NodePattern) and element.labels:
            replacement = dataclasses.replace(element, labels=())
            yield dataclasses.replace(
                path,
                elements=path.elements[:index]
                + (replacement,)
                + path.elements[index + 1 :],
            )


def _shrink_map(
    value: ast.MapLiteral, *, min_items: int
) -> Iterator[ast.MapLiteral]:
    if len(value.items) > min_items:
        for index in range(len(value.items)):
            yield ast.MapLiteral(
                items=value.items[:index] + value.items[index + 1 :]
            )
    for index, (key, expression) in enumerate(value.items):
        for child in _expression_children(expression):
            yield ast.MapLiteral(
                items=value.items[:index]
                + ((key, child),)
                + value.items[index + 1 :]
            )


def _expression_children(
    expression: ast.Expression,
) -> Iterator[ast.Expression]:
    """Immediate sub-expressions plus trivial literals.

    The greedy loop re-runs to a fixpoint, so one-level peeling reaches
    any depth; trivial literals let whole subtrees vanish in one step.
    """
    if isinstance(expression, ast.Binary):
        yield expression.left
        yield expression.right
    elif isinstance(expression, ast.Unary):
        yield expression.operand
    elif isinstance(expression, ast.FunctionCall) and expression.args:
        yield from expression.args
    elif isinstance(expression, ast.CaseExpression):
        if expression.default is not None:
            yield expression.default
        for __, result in expression.alternatives:
            yield result
    elif isinstance(expression, (ast.IsNull,)):
        yield expression.operand
    elif isinstance(expression, ast.ListLiteral) and expression.items:
        for index in range(len(expression.items)):
            yield ast.ListLiteral(
                items=expression.items[:index]
                + expression.items[index + 1 :]
            )
    if not isinstance(expression, ast.Literal):
        yield ast.Literal(0)
        yield ast.Literal(None)
