"""Differential execution of fuzz cases across the engine's surfaces.

Each :class:`~repro.testing.generator.FuzzCase` runs under every
combination of the independent execution toggles:

* the selectivity-driven match planner on / off,
* compiled vs interpreted expression evaluation,

and, for merge-kind cases, under all five revised MERGE semantics plus
the legacy Cypher 9 MERGE.

Agreement obligations differ by dialect, exactly as the paper promises:

* **Compiled vs interpreted** must agree *exactly* (same records in the
  same order, same entity ids, same final graph dict) -- compilation is
  a pure evaluation-strategy change.
* **Planner on vs off, legacy dialect**: the planner contract preserves
  the naive enumeration order for Cypher 9 (its anomalies are order-
  dependent), so agreement is again exact.
* **Planner on vs off, revised dialect**: the revised semantics are
  order-independent, so the obligation is the content multiset of the
  result records plus graph isomorphism (entity ids may differ when
  creation order differs).
* **MERGE semantics**: every revised variant must be deterministic
  under driving-table shuffling (up to isomorphism) and the collapse
  chain ALL >= GROUPING >= WEAK >= COLLAPSE >= SAME must be
  monotonically non-increasing in created entities; the legacy MERGE is
  only required to be deterministic for a *fixed* order.

Errors must agree too: the same :class:`~repro.errors.CypherError`
class at the same statement index.  Any non-Cypher exception is a
``crash`` -- always a failure.  After every variant the store-invariant
oracle (:func:`~repro.testing.invariants.check_invariants`) runs on the
post-state, and the journal is rolled back and must restore the base
graph byte-identically.
"""

from __future__ import annotations

import contextlib
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.dialect import Dialect
from repro.engine import CypherEngine
from repro.errors import CypherError
from repro.graph.comparison import isomorphic
from repro.graph.model import Node, Path, Relationship
from repro.io.graph_json import graph_to_dict
from repro.runtime import compiler, parallel, rewrite
from repro.testing.generator import FuzzCase, build_store
from repro.testing.invariants import (
    InvariantViolation,
    canonical_graph_json,
    check_invariants,
)

#: Revised MERGE keywords in collapse-refinement order: each successive
#: collapse key is coarser, so created-entity counts may only shrink.
MERGE_CHAIN = ("all", "grouping", "weak_collapse", "collapse", "same")


@dataclass
class VariantOutcome:
    """What one execution variant produced."""

    name: str
    status: str  # "ok" | "error" | "crash"
    error_type: str | None = None
    error_message: str | None = None
    error_statement: int | None = None
    #: canonical rows with entity ids (exact comparisons)
    rows_exact: tuple = ()
    #: canonical rows without entity ids (multiset comparisons)
    rows_content: tuple = ()
    graph: dict = field(default_factory=dict)

    @property
    def rows_multiset(self) -> dict:
        counts: dict = {}
        for row in self.rows_content:
            counts[row] = counts.get(row, 0) + 1
        return counts


@dataclass
class CaseResult:
    """The verdict on one fuzz case."""

    case: FuzzCase
    ok: bool
    failures: list[str] = field(default_factory=list)
    outcomes: list[VariantOutcome] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Row canonicalisation
# ---------------------------------------------------------------------------


def canonical_value(value: Any, *, with_ids: bool) -> Any:
    """A hashable, order-stable rendering of a result value.

    Entity handles read the live store, so canonicalise rows *before*
    any rollback.  With ``with_ids=False`` entities are reduced to
    their content (structure is separately checked via isomorphism).
    """
    if isinstance(value, Node):
        content = (
            "node",
            tuple(sorted(value.labels)),
            tuple(sorted(value.properties.items())),
        )
        return content + (value.id,) if with_ids else content
    if isinstance(value, Relationship):
        content = (
            "rel",
            value.type,
            tuple(sorted(value.properties.items())),
        )
        if with_ids:
            return content + (value.id, value.start.id, value.end.id)
        return content
    if isinstance(value, Path):
        return (
            "path",
            tuple(
                canonical_value(node, with_ids=with_ids)
                for node in value.nodes
            ),
            tuple(
                canonical_value(rel, with_ids=with_ids)
                for rel in value.relationships
            ),
        )
    if isinstance(value, list):
        return tuple(
            canonical_value(item, with_ids=with_ids) for item in value
        )
    if isinstance(value, dict):
        return tuple(
            sorted(
                (key, canonical_value(item, with_ids=with_ids))
                for key, item in value.items()
            )
        )
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    return repr(value)


def canonical_rows(result_records: list[dict], *, with_ids: bool) -> tuple:
    return tuple(
        tuple(
            sorted(
                (column, canonical_value(value, with_ids=with_ids))
                for column, value in record.items()
            )
        )
        for record in result_records
    )


# ---------------------------------------------------------------------------
# Running one variant
# ---------------------------------------------------------------------------


def _run_variant(
    case: FuzzCase,
    name: str,
    *,
    use_planner: bool,
    compiled: bool,
    statements=None,
    dialect=None,
    parameters: dict | None = None,
    failures: list[str] | None = None,
    workers: int = 1,
    use_rewrites: bool | None = None,
) -> VariantOutcome:
    """Execute the case's statements under one toggle combination.

    The store-invariant oracle and the journal-restore check run here,
    appending to *failures*; differential comparisons happen later in
    :func:`run_case`.

    With ``workers > 1`` the engine runs read-only segments through the
    morsel scheduler; the minimum-row threshold is lowered to 2 so the
    small tables fuzz cases produce still exercise real morsel splits.
    """
    store = build_store(case)
    base = canonical_graph_json(store)
    mark = store.mark()
    engine = CypherEngine(
        store,
        dialect=dialect if dialect is not None else case.dialect,
        extended_merge=True,
        use_planner=use_planner,
        workers=workers,
        use_rewrites=use_rewrites,
    )
    compiler.clear_cache()
    rewrite.clear_cache()
    outcome = VariantOutcome(name=name, status="ok")
    todo = statements if statements is not None else case.statements
    morsels = (
        parallel.parallel_min_rows(2)
        if workers > 1
        else contextlib.nullcontext()
    )
    try:
        with morsels:
            if compiled:
                result_rows = _execute_all(
                    engine, todo, parameters, outcome
                )
            else:
                with compiler.compilation_disabled():
                    result_rows = _execute_all(
                        engine, todo, parameters, outcome
                    )
    except CypherError as error:
        outcome.status = "error"
        outcome.error_type = type(error).__name__
        outcome.error_message = str(error)
    except InvariantViolation:
        raise
    except Exception as error:  # noqa: BLE001 -- crashes are findings
        outcome.status = "crash"
        outcome.error_type = type(error).__name__
        outcome.error_message = str(error)
    else:
        outcome.rows_exact = canonical_rows(result_rows, with_ids=True)
        outcome.rows_content = canonical_rows(result_rows, with_ids=False)
    outcome.graph = graph_to_dict(store)

    sink = failures if failures is not None else []
    try:
        check_invariants(store)
    except InvariantViolation as violation:
        sink.append(f"[{name}] post-state invariants: {violation}")
    store.rollback_to(mark)
    if canonical_graph_json(store) != base:
        sink.append(
            f"[{name}] journal rollback did not restore the base graph"
        )
    try:
        check_invariants(store)
    except InvariantViolation as violation:
        sink.append(f"[{name}] post-rollback invariants: {violation}")
    return outcome


def _execute_all(engine, statements, parameters, outcome) -> list[dict]:
    rows: list[dict] = []
    for index, statement in enumerate(statements):
        outcome.error_statement = index
        result = engine.execute(statement, parameters)
        rows = result.records
    outcome.error_statement = None
    return rows


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------


def _errors_agree(left: VariantOutcome, right: VariantOutcome) -> bool:
    return (
        left.status == right.status
        and left.error_type == right.error_type
        and left.error_statement == right.error_statement
    )


def _compare_exact(
    left: VariantOutcome, right: VariantOutcome, failures: list[str]
) -> None:
    label = f"{left.name} vs {right.name}"
    if not _errors_agree(left, right):
        failures.append(
            f"[{label}] outcome mismatch: "
            f"{left.status}/{left.error_type} (stmt {left.error_statement})"
            f" != {right.status}/{right.error_type} "
            f"(stmt {right.error_statement})"
        )
        return
    if left.status == "ok" and left.rows_exact != right.rows_exact:
        failures.append(f"[{label}] result rows differ (exact comparison)")
    if left.graph != right.graph:
        failures.append(f"[{label}] final graphs differ (exact comparison)")


def _compare_isomorphic(
    left: VariantOutcome, right: VariantOutcome, failures: list[str]
) -> None:
    label = f"{left.name} vs {right.name}"
    if not _errors_agree(left, right):
        failures.append(
            f"[{label}] outcome mismatch: "
            f"{left.status}/{left.error_type} (stmt {left.error_statement})"
            f" != {right.status}/{right.error_type} "
            f"(stmt {right.error_statement})"
        )
        return
    if left.status == "ok" and left.rows_multiset != right.rows_multiset:
        failures.append(
            f"[{label}] result-row multisets differ (content comparison)"
        )
    if not _graphs_isomorphic(left.graph, right.graph):
        failures.append(f"[{label}] final graphs are not isomorphic")


def _graphs_isomorphic(left: dict, right: dict) -> bool:
    from repro.io.graph_json import dict_to_store

    return isomorphic(
        dict_to_store(left).snapshot(), dict_to_store(right).snapshot()
    )


# ---------------------------------------------------------------------------
# Case drivers
# ---------------------------------------------------------------------------


def run_case(case: FuzzCase, *, workers: int = 0) -> CaseResult:
    """Run one case across every variant and collect disagreements.

    ``workers > 1`` adds morsel-parallel variants: the same statements
    executed through the parallel scheduler must agree *exactly* with
    their serial counterparts (morsel concatenation is order-exact for
    record-local segments, in both dialects).
    """
    if case.kind == "merge":
        return _run_merge_case(case, workers=workers)
    return _run_pipeline_case(case, workers=workers)


def _run_pipeline_case(case: FuzzCase, *, workers: int = 0) -> CaseResult:
    failures: list[str] = []
    outcomes: dict[tuple[bool, bool], VariantOutcome] = {}
    for use_planner, compiled in itertools.product(
        (True, False), (True, False)
    ):
        name = (
            f"planner={'on' if use_planner else 'off'},"
            f"{'compiled' if compiled else 'interpreted'}"
        )
        outcomes[(use_planner, compiled)] = _run_variant(
            case,
            name,
            use_planner=use_planner,
            compiled=compiled,
            failures=failures,
        )
    # The rewrite pass alone (planner off, so enumeration order is the
    # naive one): pushdown + hoisting must be *exactly* order- and
    # error-preserving, in both dialects.
    rewritten = _run_variant(
        case,
        "rewrites=on,planner=off,compiled",
        use_planner=False,
        compiled=True,
        use_rewrites=True,
        failures=failures,
    )
    extra = [rewritten]
    _compare_exact(outcomes[(False, True)], rewritten, failures)
    if workers > 1:
        for use_planner in (True, False):
            name = (
                f"workers={workers},"
                f"planner={'on' if use_planner else 'off'},compiled"
            )
            outcome = _run_variant(
                case,
                name,
                use_planner=use_planner,
                compiled=True,
                workers=workers,
                failures=failures,
            )
            extra.append(outcome)
            _compare_exact(outcomes[(use_planner, True)], outcome, failures)
    for outcome in list(outcomes.values()) + extra:
        if outcome.status == "crash":
            failures.append(
                f"[{outcome.name}] crashed at statement "
                f"{outcome.error_statement}: {outcome.error_type}: "
                f"{outcome.error_message}"
            )
    # Compiled vs interpreted: exact agreement for each planner setting.
    for use_planner in (True, False):
        _compare_exact(
            outcomes[(use_planner, True)],
            outcomes[(use_planner, False)],
            failures,
        )
    # Planner on vs off: exact for legacy, isomorphic for revised.
    if case.dialect == Dialect.CYPHER9.value:
        _compare_exact(
            outcomes[(True, True)], outcomes[(False, True)], failures
        )
    else:
        _compare_isomorphic(
            outcomes[(True, True)], outcomes[(False, True)], failures
        )
    return CaseResult(
        case=case,
        ok=not failures,
        failures=failures,
        outcomes=list(outcomes.values()) + extra,
    )


def run_views_case(case: FuzzCase, *, workers: int = 0) -> CaseResult:
    """Differential oracle for incremental view maintenance.

    The case's ``views`` queries are registered up front on one
    maintained store; the case's statements then run on that store,
    and after **every** successful statement each view's maintained
    result must equal a full re-execution of its query on a copy of
    the current graph, across the engine's surfaces (planner on/off,
    compiled/interpreted, optionally morsel-parallel).

    Re-execution runs on the maintained store itself -- registration
    guarantees the queries are read-only, and sharing the store keeps
    entity ids comparable.  The agreement obligation mirrors the
    dialect contract: Cypher 9 views compare **exactly** (same rows,
    same order, same entity ids); revised views compare as row
    multisets, since revised results are order-independent.
    """
    failures: list[str] = []
    store = build_store(case)
    from repro.views import ViewRegistry

    registry = ViewRegistry(store, extended_merge=True)
    views = []
    for source, view_dialect in case.views:
        try:
            views.append(registry.register(source, dialect=view_dialect))
        except CypherError:
            continue  # unregisterable query -- not a finding
    if case.kind == "merge":
        statement, dialect = _merge_statement(case, "all")
        todo: tuple = (statement,)
        parameters = {"rows": list(case.merge_table["records"])}
    else:
        todo = case.statements
        dialect = Dialect.parse(case.dialect)
        parameters = None
    engine = CypherEngine(
        store,
        dialect=dialect,
        extended_merge=True,
        use_planner=False,
    )
    compiler.clear_cache()
    rewrite.clear_cache()
    surfaces: list[tuple[str, bool, bool, int]] = [
        ("planner=off,compiled", True, False, 1),
        ("planner=off,interpreted", False, False, 1),
        ("planner=on,compiled", True, True, 1),
    ]
    morsels = contextlib.nullcontext()
    if workers > 1:
        surfaces.append(
            (f"workers={workers},planner=off,compiled", True, False, workers)
        )
        morsels = parallel.parallel_min_rows(2)
    with morsels:
        for index, write in enumerate(todo):
            try:
                engine.execute(write, parameters)
            except CypherError:
                # The statement rolled back atomically: nothing was
                # committed, so the views must simply be unaffected --
                # which the check after the *next* success verifies.
                continue
            except Exception as error:  # noqa: BLE001 -- findings
                failures.append(
                    f"[views] statement {index} crashed: "
                    f"{type(error).__name__}: {error}"
                )
                break
            _check_views(store, views, index, surfaces, failures)
            if failures:
                break  # report the first divergent statement only
    try:
        check_invariants(store)
    except InvariantViolation as violation:
        failures.append(f"[views] post-run invariants: {violation}")
    registry.close()
    return CaseResult(
        case=case, ok=not failures, failures=failures, outcomes=[]
    )


def _check_views(
    store,
    views,
    statement_index: int,
    surfaces,
    failures: list[str],
) -> None:
    """Maintained result == full re-execution, for every view/surface."""
    if not views:
        return
    maintained: dict[str, tuple] = {}
    for view in views:
        try:
            result = view.result()
        except Exception as error:  # noqa: BLE001 -- findings
            failures.append(
                f"[views:{view.id}] refresh crashed after statement "
                f"{statement_index}: {type(error).__name__}: {error}"
            )
            return
        maintained[view.id] = (
            tuple(result.columns),
            canonical_rows(list(result.records), with_ids=True),
        )
    for name, compiled, use_planner, n_workers in surfaces:
        for view in views:
            fresh_engine = CypherEngine(
                store,
                dialect=view.dialect,
                extended_merge=True,
                use_planner=use_planner,
                workers=n_workers,
            )
            evaluation = (
                contextlib.nullcontext()
                if compiled
                else compiler.compilation_disabled()
            )
            try:
                with evaluation:
                    reexec = fresh_engine.execute(
                        view.statement, view.parameters
                    )
            except Exception as error:  # noqa: BLE001 -- findings
                failures.append(
                    f"[views:{view.id}:{name}] re-execution raised after "
                    f"statement {statement_index}: "
                    f"{type(error).__name__}: {error}"
                )
                continue
            columns, rows = maintained[view.id]
            if tuple(reexec.columns) != columns:
                failures.append(
                    f"[views:{view.id}:{name}] columns differ after "
                    f"statement {statement_index}: maintained "
                    f"{columns} != re-executed {tuple(reexec.columns)}"
                )
                continue
            fresh_rows = canonical_rows(reexec.records, with_ids=True)
            if view.dialect is Dialect.CYPHER9:
                agree = rows == fresh_rows
                mode = "exact"
            else:
                agree = _row_multiset(rows) == _row_multiset(fresh_rows)
                mode = "multiset"
            if not agree:
                failures.append(
                    f"[views:{view.id}:{name}] maintained result "
                    f"diverged from re-execution after statement "
                    f"{statement_index} ({mode} comparison, "
                    f"{len(rows)} maintained vs {len(fresh_rows)} "
                    f"re-executed rows): {view.source!r}"
                )


def _row_multiset(rows: tuple) -> dict:
    counts: dict = {}
    for row in rows:
        counts[row] = counts.get(row, 0) + 1
    return counts


def _merge_statement(case: FuzzCase, keyword: str):
    """The UNWIND-driven merge statement for one semantics keyword."""
    from repro.parser.parser import parse

    columns = case.merge_table["columns"]
    projections = ", ".join(
        f"row.{column} AS {column}" for column in columns
    )
    surface = {
        "all": "MERGE ALL",
        "grouping": "MERGE GROUPING",
        "weak_collapse": "MERGE WEAK COLLAPSE",
        "collapse": "MERGE COLLAPSE",
        "same": "MERGE SAME",
        "legacy": "MERGE",
    }
    merge = surface[keyword]
    source = (
        f"UNWIND $rows AS row WITH {projections} "
        f"{merge} {case.merge_pattern}"
    )
    dialect = Dialect.CYPHER9 if keyword == "legacy" else Dialect.REVISED
    return (
        parse(source, dialect, extended_merge=True),
        dialect,
    )


def _graph_size(graph: dict) -> tuple[int, int]:
    return (len(graph.get("nodes", ())), len(graph.get("relationships", ())))


def _run_merge_case(case: FuzzCase, *, workers: int = 0) -> CaseResult:
    import random

    failures: list[str] = []
    outcomes: list[VariantOutcome] = []
    rows = list(case.merge_table["records"])
    shuffled = list(rows)
    random.Random(case.seed_key).shuffle(shuffled)
    results: dict[str, VariantOutcome] = {}
    for keyword in MERGE_CHAIN + ("legacy",):
        statement, dialect = _merge_statement(case, keyword)
        run = lambda tag, records, **kw: _run_variant(  # noqa: E731
            case,
            f"merge:{keyword}:{tag}",
            statements=(statement,),
            dialect=dialect,
            parameters={"rows": records},
            failures=failures,
            **kw,
        )
        base = run("base", rows, use_planner=False, compiled=True)
        results[keyword] = base
        outcomes.append(base)
        for outcome in (base,):
            if outcome.status == "crash":
                failures.append(
                    f"[{outcome.name}] crashed: {outcome.error_type}: "
                    f"{outcome.error_message}"
                )
        # Determinism for a fixed order -- required even of legacy MERGE.
        again = run("again", rows, use_planner=False, compiled=True)
        _compare_exact(base, again, failures)
        # Evaluation strategy must not matter.
        interpreted = run(
            "interpreted", rows, use_planner=False, compiled=False
        )
        _compare_exact(base, interpreted, failures)
        if workers > 1:
            # The UNWIND/WITH prefix parallelises; the MERGE suffix
            # stays serial -- the whole statement must agree exactly.
            morsel_run = run(
                "parallel",
                rows,
                use_planner=False,
                compiled=True,
                workers=workers,
            )
            _compare_exact(base, morsel_run, failures)
        if keyword != "legacy":
            # Revised MERGE matches the input graph only: the driving
            # table is a multiset, so shuffling must not matter.
            shuffled_run = run(
                "shuffled", shuffled, use_planner=False, compiled=True
            )
            _compare_isomorphic(base, shuffled_run, failures)
            planner_run = run(
                "planner", rows, use_planner=True, compiled=True
            )
            _compare_isomorphic(base, planner_run, failures)
    # Collapse-chain monotonicity: each key refines the previous, so
    # created-entity counts may only shrink along the chain.
    chain_ok = [
        results[keyword]
        for keyword in MERGE_CHAIN
        if results[keyword].status == "ok"
    ]
    if len(chain_ok) == len(MERGE_CHAIN):
        sizes = [_graph_size(outcome.graph) for outcome in chain_ok]
        for (coarser, finer), (left, right) in zip(
            itertools.pairwise(MERGE_CHAIN), itertools.pairwise(sizes)
        ):
            if right[0] > left[0] or right[1] > left[1]:
                failures.append(
                    f"[merge chain] {finer} produced a larger graph "
                    f"{right} than {coarser} {left}"
                )
    elif chain_ok and len(chain_ok) != len(MERGE_CHAIN):
        statuses = {
            keyword: results[keyword].status for keyword in MERGE_CHAIN
        }
        failures.append(
            f"[merge chain] revised semantics disagree on success: "
            f"{statuses}"
        )
    return CaseResult(
        case=case, ok=not failures, failures=failures, outcomes=outcomes
    )
