"""``python -m repro.fuzz``: the differential conformance fuzzer.

Typical invocations::

    python -m repro.fuzz --seed 0 --cases 200        # the CI smoke run
    python -m repro.fuzz --seed 7 --cases 5000 -v    # a longer hunt
    python -m repro.fuzz --replay tests/fuzz_corpus  # corpus regression
    python -m repro.fuzz --crash 3                   # WAL crash injection
    python -m repro.fuzz --views 4 --cases 200       # view-maintenance oracle

Every failing case is greedily shrunk and written as a replayable JSON
bundle under ``tests/fuzz_corpus/`` (``--corpus`` to redirect,
``--no-shrink`` to keep the original).  Exit status is 0 iff every case
passed.  Same seed => same cases, byte for byte.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential conformance fuzzer for the Cypher "
        "update semantics (planner on/off x compiled/interpreted x "
        "merge semantics, with store-invariant oracles).",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="case-stream seed (default 0)"
    )
    parser.add_argument(
        "--cases",
        type=int,
        default=200,
        help="number of cases to run (default 200)",
    )
    parser.add_argument(
        "--start",
        type=int,
        default=0,
        help="first case index (resume a long run)",
    )
    parser.add_argument(
        "--corpus",
        type=Path,
        default=None,
        help="directory for shrunk failure bundles "
        "(default tests/fuzz_corpus)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="write failing cases without minimising them",
    )
    parser.add_argument(
        "--shrink-budget",
        type=int,
        default=400,
        help="max candidate evaluations per shrink (default 400)",
    )
    parser.add_argument(
        "--max-failures",
        type=int,
        default=5,
        help="stop after this many distinct failures (default 5)",
    )
    parser.add_argument(
        "--replay",
        type=Path,
        default=None,
        metavar="DIR",
        help="replay every bundle in DIR instead of generating cases",
    )
    parser.add_argument(
        "--crash",
        type=int,
        default=None,
        metavar="SCENARIOS",
        help="run this many WAL crash-injection scenarios instead of "
        "differential cases (kills recovery at every record boundary "
        "plus torn/corrupt tails)",
    )
    parser.add_argument(
        "--statements",
        type=int,
        default=20,
        help="statements per crash scenario (default 20)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="also run each case through the morsel-parallel scheduler "
        "with N workers and require exact agreement with the serial "
        "runs (default 0 = serial only)",
    )
    parser.add_argument(
        "--views",
        type=int,
        default=0,
        metavar="N",
        help="register N deterministic read queries per case as "
        "maintained views and, after every statement, require each "
        "maintained result to equal a full re-execution of its query "
        "across the engine surfaces (default 0 = off)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print one line per case",
    )
    return parser


def run_crash(args: argparse.Namespace) -> int:
    import tempfile

    from repro.testing.crash import (
        run_checkpoint_crash_scenario,
        run_crash_scenario,
        scenario_statements,
    )

    started = time.perf_counter()
    failed = 0
    kill_points = 0
    for seed in range(args.seed, args.seed + args.crash):
        statements = scenario_statements(seed, args.statements)
        with tempfile.TemporaryDirectory() as scratch:
            report = run_crash_scenario(
                seed, scratch, statements=statements
            )
        with tempfile.TemporaryDirectory() as scratch:
            checkpoint_report = run_checkpoint_crash_scenario(
                seed, scratch, statements=statements
            )
        kill_points += report.kill_points + checkpoint_report.kill_points
        ok = report.ok and checkpoint_report.ok
        status = "ok" if ok else "FAIL"
        if args.verbose or not ok:
            print(
                f"[{status}] crash seed {seed}: "
                f"{report.records_written} records, "
                f"{report.kill_points} WAL + "
                f"{checkpoint_report.kill_points} checkpoint kill points"
            )
        if not ok:
            failed += 1
            for failure in (
                report.failures + checkpoint_report.failures
            )[:5]:
                print(f"    {failure}")
    elapsed = time.perf_counter() - started
    print(
        f"{args.crash - failed}/{args.crash} crash scenarios passed "
        f"({kill_points} kill points) in {elapsed:.1f}s"
    )
    return 1 if failed else 0


def run_replay(directory: Path, *, verbose: bool) -> int:
    from repro.testing.corpus import iter_bundles, replay_bundle

    bundles = iter_bundles(directory)
    if not bundles:
        print(f"no bundles under {directory}")
        return 0
    failed = 0
    for path in bundles:
        result = replay_bundle(path)
        status = "ok" if result.ok else "FAIL"
        if verbose or not result.ok:
            print(f"[{status}] {path}")
        if not result.ok:
            failed += 1
            for failure in result.failures[:5]:
                print(f"    {failure}")
    print(f"replayed {len(bundles)} bundle(s), {failed} failing")
    return 1 if failed else 0


def run_fuzz(args: argparse.Namespace) -> int:
    from repro.testing.corpus import DEFAULT_CORPUS, write_bundle
    from repro.testing.differential import run_case, run_views_case
    from repro.testing.generator import case_for, with_views
    from repro.testing.shrinker import shrink

    corpus = args.corpus if args.corpus is not None else DEFAULT_CORPUS

    def execute(one):
        if one.views:
            return run_views_case(one, workers=args.workers)
        return run_case(one, workers=args.workers)

    started = time.perf_counter()
    failures = 0
    for index in range(args.start, args.start + args.cases):
        case = case_for(args.seed, index)
        if args.views:
            case = with_views(case, args.views)
        result = execute(case)
        if args.verbose:
            status = "ok" if result.ok else "FAIL"
            print(f"[{status}] case {case.seed_key} ({case.kind})")
        if result.ok:
            continue
        failures += 1
        print(f"FAIL case {case.seed_key} ({case.kind}):")
        for failure in result.failures[:5]:
            print(f"    {failure[:400]}")
        reduced = case
        if not args.no_shrink and not case.views:
            # View cases are not shrunk: the registered queries are
            # part of the repro, and dropping statements changes every
            # later maintained/re-executed comparison point.
            reduced = shrink(case, budget=args.shrink_budget)
        bundle_failures = (
            execute(reduced).failures or result.failures
        )
        path = write_bundle(reduced, bundle_failures, corpus)
        print(f"    shrunk bundle written to {path}")
        if failures >= args.max_failures:
            print("stopping: --max-failures reached")
            break
    elapsed = time.perf_counter() - started
    ran = (
        min(args.cases, (index - args.start) + 1)
        if args.cases
        else 0
    )
    rate = ran / elapsed if elapsed > 0 else float("inf")
    print(
        f"{ran - failures}/{ran} cases passed in {elapsed:.1f}s "
        f"({rate:.0f} cases/s, seed {args.seed})"
    )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay is not None:
        return run_replay(args.replay, verbose=args.verbose)
    if args.crash is not None:
        if args.crash <= 0:
            print("nothing to do: --crash must be positive")
            return 2
        return run_crash(args)
    if args.cases <= 0:
        print("nothing to do: --cases must be positive")
        return 2
    return run_fuzz(args)


if __name__ == "__main__":
    sys.exit(main())
