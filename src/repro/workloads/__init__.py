"""Synthetic workload generators for the benchmarks."""
