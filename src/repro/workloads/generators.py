"""Synthetic workload generators.

The paper has no performance evaluation, so the scaling benchmarks
(P1-P4 in DESIGN.md) synthesize workloads shaped like its motivating
scenarios: a marketplace graph (Figure 1 at scale) and CSV-style order
tables with duplicates and nulls (Examples 3 and 5 at scale).

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.store import GraphStore
from repro.runtime.table import DrivingTable


@dataclass(frozen=True)
class MarketplaceConfig:
    """Size knobs for the synthetic marketplace graph."""

    users: int = 100
    vendors: int = 10
    products: int = 50
    orders: int = 200
    offers_per_product: int = 1
    seed: int = 7


def marketplace_graph(
    config: MarketplaceConfig = MarketplaceConfig(),
) -> GraphStore:
    """A Figure 1-shaped graph: Users order Products, Vendors offer them."""
    rng = random.Random(config.seed)
    store = GraphStore()
    users = [
        store.create_node(
            ("User",), {"id": i, "name": f"user-{i}"}
        )
        for i in range(config.users)
    ]
    vendors = [
        store.create_node(
            ("Vendor",), {"id": i, "name": f"vendor-{i}"}
        )
        for i in range(config.vendors)
    ]
    products = [
        store.create_node(
            ("Product",),
            {"id": i, "name": f"product-{i}", "price": (i % 50) + 1},
        )
        for i in range(config.products)
    ]
    for product in products:
        for vendor in rng.sample(
            vendors, min(config.offers_per_product, len(vendors))
        ):
            store.create_relationship("OFFERS", vendor, product)
    for __ in range(config.orders):
        store.create_relationship(
            "ORDERED", rng.choice(users), rng.choice(products)
        )
    store.commit_to(0)
    return store


@dataclass(frozen=True)
class OrderTableConfig:
    """Shape of a synthetic cid/pid order table (Example 5 at scale)."""

    rows: int = 1000
    distinct_users: int = 100
    distinct_products: int = 50
    #: fraction of rows whose pid is null (unknown product)
    null_ratio: float = 0.1
    #: fraction of rows that duplicate an earlier (cid, pid) pair
    duplicate_ratio: float = 0.2
    seed: int = 11


def order_table(config: OrderTableConfig = OrderTableConfig()) -> DrivingTable:
    """A cid/pid/date driving table with controlled duplicates and nulls.

    Drives the MERGE-variant scaling benchmarks: ``duplicate_ratio``
    controls how much Grouping/Collapse can save over Atomic, and
    ``null_ratio`` exercises the null-handling rules of Example 5.
    """
    rng = random.Random(config.seed)
    rows: list[dict] = []
    seen_pairs: list[tuple] = []
    for index in range(config.rows):
        if seen_pairs and rng.random() < config.duplicate_ratio:
            cid, pid = rng.choice(seen_pairs)
        else:
            cid = rng.randrange(config.distinct_users)
            if rng.random() < config.null_ratio:
                pid = None
            else:
                pid = rng.randrange(config.distinct_products)
            seen_pairs.append((cid, pid))
        rows.append(
            {"cid": cid, "pid": pid, "date": f"2018-{(index % 12) + 1:02d}-01"}
        )
    return DrivingTable(("cid", "pid", "date"), rows)


def chain_graph(length: int) -> GraphStore:
    """A directed chain of `length` relationships (matcher benchmarks)."""
    store = GraphStore()
    previous = store.create_node(("Hop",), {"id": 0})
    for index in range(1, length + 1):
        node = store.create_node(("Hop",), {"id": index})
        store.create_relationship("NEXT", previous, node)
        previous = node
    store.commit_to(0)
    return store


def social_graph(
    people: int, friends_per_person: int = 5, seed: int = 23
) -> GraphStore:
    """A random friendship graph (KNOWS), for traversal workloads."""
    rng = random.Random(seed)
    store = GraphStore()
    ids = [
        store.create_node(
            ("Person",), {"id": i, "name": f"person-{i}"}
        )
        for i in range(people)
    ]
    for source in ids:
        for __ in range(friends_per_person):
            target = rng.choice(ids)
            if target != source:
                store.create_relationship("KNOWS", source, target)
    store.commit_to(0)
    return store


def product_update_table(
    store: GraphStore, *, seed: int = 5
) -> DrivingTable:
    """One row per Product node (drives SET/DELETE scaling benchmarks)."""
    rng = random.Random(seed)
    rows = []
    for node_id in sorted(store.nodes_with_label("Product")):
        rows.append(
            {
                "product": store.node(node_id),
                "new_price": rng.randrange(1, 1000),
            }
        )
    return DrivingTable(("product", "new_price"), rows)
