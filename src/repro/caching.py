"""Small shared caching primitives.

:class:`LRUCache` is the bounded, least-recently-used map behind the
engine's parsed-statement cache and the expression compiler's
closure cache.  It keeps hit/miss counters so callers (the shell's
``:cache`` command, the PROFILE layer) can report cache effectiveness.

Keys may be arbitrary objects; an unhashable key (possible because
:class:`~repro.parser.ast.Literal` can wrap runtime values such as
lists during aggregate substitution) is treated as a guaranteed miss
on ``get`` and silently not stored on ``put`` -- callers fall back to
recomputing, which is always correct.

The cache is thread-safe: the morsel executor (``runtime.parallel``)
shares the compiler's closure caches across worker threads, and
``OrderedDict.move_to_end`` is not atomic, so every operation takes a
re-entrant lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterator


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and evicts
    the stalest entry once ``capacity`` is exceeded.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data", "_lock")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("LRUCache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: Any, default: Any = None) -> Any:
        """The cached value, or *default*; refreshes recency on a hit."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            except TypeError:  # unhashable key
                self.misses += 1
                return default
            self.hits += 1
            self._data.move_to_end(key)
            return value

    def put(self, key: Any, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the stalest if full."""
        with self._lock:
            try:
                self._data[key] = value
            except TypeError:  # unhashable key: not cacheable
                return
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._data.clear()

    def info(self) -> dict[str, int]:
        """Plain-dict counters: hits, misses, evictions, size, capacity."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._data),
                "capacity": self.capacity,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            try:
                return key in self._data
            except TypeError:
                return False

    def __iter__(self) -> Iterator:
        with self._lock:
            return iter(tuple(self._data))
