"""Small shared caching primitives.

:class:`LRUCache` is the bounded, least-recently-used map behind the
engine's parsed-statement cache and the expression compiler's
closure cache.  It keeps hit/miss counters so callers (the shell's
``:cache`` command, the PROFILE layer) can report cache effectiveness.

Keys may be arbitrary objects; an unhashable key (possible because
:class:`~repro.parser.ast.Literal` can wrap runtime values such as
lists during aggregate substitution) is treated as a guaranteed miss
on ``get`` and silently not stored on ``put`` -- callers fall back to
recomputing, which is always correct.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and evicts
    the stalest entry once ``capacity`` is exceeded.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("LRUCache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Any, default: Any = None) -> Any:
        """The cached value, or *default*; refreshes recency on a hit."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        except TypeError:  # unhashable key
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the stalest if full."""
        try:
            self._data[key] = value
        except TypeError:  # unhashable key: not cacheable
            return
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._data.clear()

    def info(self) -> dict[str, int]:
        """Plain-dict counters: hits, misses, evictions, size, capacity."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "capacity": self.capacity,
        }

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        try:
            return key in self._data
        except TypeError:
            return False

    def __iter__(self) -> Iterator:
        return iter(self._data)
