"""Revised update semantics (the paper's core contribution)."""

from repro.core.merge import MergeSemantics, merge

__all__ = ["MergeSemantics", "merge"]
