"""The revised, atomic SET clause (Section 7, "Semantics for SET").

Evaluation is the paper's two-step process:

1. every set item is evaluated *on the input graph* for *every* record,
   accumulating the induced changes in two relations --
   ``propchanges(T, s)`` for property writes and ``labchanges(T, s, n)``
   for label additions;
2. if the property changes are well defined (no two different values
   for the same (entity, key) pair) they are applied in one step;
   otherwise the clause aborts with :class:`PropertyConflictError`.

This restores the behaviours of Examples 1 and 2: the id swap
``SET p1.id = p2.id, p2.id = p1.id`` works (both right-hand sides are
read from the input graph), and an ambiguous write aborts instead of
silently keeping the last value.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import CypherTypeError, DeletedEntityError, PropertyConflictError
from repro.graph.model import Node, Relationship
from repro.graph.values import equivalent, type_name
from repro.parser import ast
from repro.runtime.compiler import compile_expression
from repro.runtime.context import EvalContext
from repro.runtime.table import DrivingTable

#: One accumulated property write: (entity kind, entity id, key) -> value;
#: ``None`` encodes removal of the key.
PropChanges = dict[tuple[str, int, str], Any]

#: Accumulated label additions: set of (node id, label).
LabChanges = set[tuple[int, str]]


def execute_set(
    ctx: EvalContext, clause: ast.SetClause, table: DrivingTable
) -> DrivingTable:
    """Atomic SET: collect all changes, check conflicts, apply once."""
    prop_changes, lab_changes = collect_changes(ctx, clause.items, table)
    apply_changes(ctx, prop_changes, lab_changes)
    return table


def collect_changes(
    ctx: EvalContext,
    items: Iterable[ast.SetItem],
    table: DrivingTable,
) -> tuple[PropChanges, LabChanges]:
    """Build propchanges / labchanges for all items over all records.

    Each item's target and value expressions are compiled once here;
    the record loop pays only the evaluations.
    """
    prop_changes: PropChanges = {}
    lab_changes: LabChanges = set()
    collectors = [_compile_item(item) for item in items]
    for record in table:
        for collect in collectors:
            collect(ctx, record, prop_changes, lab_changes)
    return prop_changes, lab_changes


def apply_changes(
    ctx: EvalContext, prop_changes: PropChanges, lab_changes: LabChanges
) -> None:
    """Apply accumulated changes to the store (conflicts already checked)."""
    store = ctx.store
    for (kind, entity_id, key), value in prop_changes.items():
        if kind == "node":
            store.set_node_property(entity_id, key, value)
        else:
            store.set_rel_property(entity_id, key, value)
    for node_id, label in lab_changes:
        store.add_label(node_id, label)


# ---------------------------------------------------------------------------

def _entity_target(ctx: EvalContext, value: Any) -> tuple[str, int] | None:
    """Classify a SET target value; null targets are skipped."""
    if value is None:
        return None
    if isinstance(value, Node):
        if value.is_deleted:
            raise DeletedEntityError(
                f"cannot SET on deleted node {value.id}"
            )
        return ("node", value.id)
    if isinstance(value, Relationship):
        if value.is_deleted:
            raise DeletedEntityError(
                f"cannot SET on deleted relationship {value.id}"
            )
        return ("rel", value.id)
    raise CypherTypeError(
        f"SET expects a Node or Relationship, got {type_name(value)}"
    )


def _record_write(
    prop_changes: PropChanges,
    entity: tuple[str, int],
    key: str,
    value: Any,
) -> None:
    """Record one property write, failing on a conflicting earlier write."""
    change_key = (entity[0], entity[1], key)
    if change_key in prop_changes:
        existing = prop_changes[change_key]
        if not equivalent(existing, value):
            raise PropertyConflictError(
                f"{entity[0]}#{entity[1]}", key, existing, value
            )
        return
    prop_changes[change_key] = value


def _current_properties(ctx: EvalContext, entity: tuple[str, int]) -> dict:
    if entity[0] == "node":
        return dict(ctx.store.node_properties(entity[1]))
    return dict(ctx.store.rel_properties(entity[1]))


def _compile_item(item: ast.SetItem):
    """A per-record collector ``(ctx, record, prop_changes, lab_changes)``."""
    if isinstance(item, ast.SetProperty):
        subject_fn = compile_expression(item.target.subject)
        value_fn = compile_expression(item.value)
        key = item.target.key

        def collect_property(ctx, record, prop_changes, lab_changes) -> None:
            entity = _entity_target(ctx, subject_fn(ctx, record))
            if entity is None:
                return
            _record_write(prop_changes, entity, key, value_fn(ctx, record))

        return collect_property
    if isinstance(item, ast.SetAllProperties):
        target_fn = compile_expression(item.target)
        value_fn = compile_expression(item.value)

        def collect_replace(ctx, record, prop_changes, lab_changes) -> None:
            entity = _entity_target(ctx, target_fn(ctx, record))
            if entity is None:
                return
            new_map = _require_map(ctx, value_fn, record)
            # Replacing the whole map = removing every current key that
            # the new map does not define, then writing the new entries.
            # Both parts participate in conflict detection per key.
            for key in _current_properties(ctx, entity):
                if key not in new_map:
                    _record_write(prop_changes, entity, key, None)
            for key, value in new_map.items():
                _record_write(prop_changes, entity, key, value)

        return collect_replace
    if isinstance(item, ast.SetAdditiveProperties):
        target_fn = compile_expression(item.target)
        value_fn = compile_expression(item.value)

        def collect_additive(ctx, record, prop_changes, lab_changes) -> None:
            entity = _entity_target(ctx, target_fn(ctx, record))
            if entity is None:
                return
            for key, value in _require_map(ctx, value_fn, record).items():
                _record_write(prop_changes, entity, key, value)

        return collect_additive
    if isinstance(item, ast.SetLabels):
        target_fn = compile_expression(item.target)
        labels = item.labels

        def collect_labels(ctx, record, prop_changes, lab_changes) -> None:
            target = target_fn(ctx, record)
            if target is None:
                return
            if not isinstance(target, Node):
                raise CypherTypeError(
                    f"labels can only be set on a Node, "
                    f"got {type_name(target)}"
                )
            if target.is_deleted:
                raise DeletedEntityError(
                    f"cannot SET labels on deleted node {target.id}"
                )
            for label in labels:
                lab_changes.add((target.id, label))

        return collect_labels
    raise AssertionError(f"unknown SET item {type(item).__name__}")


def _require_map(ctx: EvalContext, value_fn, record: dict) -> dict:
    value = value_fn(ctx, record)
    if isinstance(value, (Node, Relationship)):
        value = dict(value.properties)
    if not isinstance(value, dict):
        raise CypherTypeError(
            f"SET with '=' or '+=' expects a Map, got {type_name(value)}"
        )
    return value
