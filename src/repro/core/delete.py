"""The revised, strict DELETE / DETACH DELETE (Section 7).

The clause is atomic: all expressions are evaluated over the whole
driving table against the input graph, collecting every node and
relationship to delete.  Then:

* plain ``DELETE`` fails with :class:`DanglingRelationshipError` if any
  collected node still has a live relationship that is *not* also
  collected ("dangling relationships should never occur at any time");
* ``DETACH DELETE`` additionally collects all relationships attached to
  collected nodes;
* after the removal, "any reference to a deleted entity in the driving
  table is replaced by a null" -- including references inside lists,
  maps and paths.
"""

from __future__ import annotations

from typing import Any

from repro.errors import CypherTypeError, DanglingRelationshipError
from repro.graph.model import Node, Path, Relationship
from repro.graph.values import type_name
from repro.parser import ast
from repro.runtime.context import EvalContext
from repro.runtime.expressions import evaluate
from repro.runtime.table import DrivingTable


def execute_delete(
    ctx: EvalContext, clause: ast.DeleteClause, table: DrivingTable
) -> DrivingTable:
    """Atomic DELETE: collect, validate, remove, null out references."""
    nodes, rels = collect_deletions(ctx, clause, table)
    if clause.detach:
        for node_id in nodes:
            rels |= ctx.store.out_relationships(node_id)
            rels |= ctx.store.in_relationships(node_id)
    else:
        _require_no_dangling(ctx, nodes, rels)
    apply_deletions(ctx, nodes, rels)
    return null_out_references(table, nodes, rels)


def collect_deletions(
    ctx: EvalContext, clause: ast.DeleteClause, table: DrivingTable
) -> tuple[set[int], set[int]]:
    """Evaluate every DELETE expression over every record."""
    nodes: set[int] = set()
    rels: set[int] = set()
    for record in table:
        for expression in clause.expressions:
            value = evaluate(ctx, expression, record)
            _collect_value(value, nodes, rels)
    return nodes, rels


def _collect_value(value: Any, nodes: set[int], rels: set[int]) -> None:
    if value is None:
        return  # deleting null is a no-op
    if isinstance(value, Node):
        nodes.add(value.id)
        return
    if isinstance(value, Relationship):
        rels.add(value.id)
        return
    if isinstance(value, Path):
        for node in value.nodes:
            nodes.add(node.id)
        for rel in value.relationships:
            rels.add(rel.id)
        return
    raise CypherTypeError(
        f"DELETE expects Nodes, Relationships or Paths, "
        f"got {type_name(value)}"
    )


def _require_no_dangling(
    ctx: EvalContext, nodes: set[int], rels: set[int]
) -> None:
    for node_id in sorted(nodes):
        attached = (
            ctx.store.out_relationships(node_id)
            | ctx.store.in_relationships(node_id)
        )
        leftover = attached - rels
        if leftover:
            raise DanglingRelationshipError(node_id, sorted(leftover))


def apply_deletions(
    ctx: EvalContext, nodes: set[int], rels: set[int]
) -> None:
    """Remove collected entities (relationships first)."""
    for rel_id in sorted(rels):
        if not ctx.store.rel_is_deleted(rel_id):
            ctx.store.delete_relationship(rel_id)
    for node_id in sorted(nodes):
        if not ctx.store.node_is_deleted(node_id):
            ctx.store.delete_node(node_id)


def null_out_references(
    table: DrivingTable, nodes: set[int], rels: set[int]
) -> DrivingTable:
    """Replace references to deleted entities with null, recursively."""
    output = DrivingTable(table.columns)
    for record in table:
        output.add(
            {
                column: _null_out(record[column], nodes, rels)
                for column in table.columns
            }
        )
    return output


def _null_out(value: Any, nodes: set[int], rels: set[int]) -> Any:
    if isinstance(value, Node):
        return None if value.id in nodes else value
    if isinstance(value, Relationship):
        return None if value.id in rels else value
    if isinstance(value, Path):
        touched = any(node.id in nodes for node in value.nodes) or any(
            rel.id in rels for rel in value.relationships
        )
        return None if touched else value
    if isinstance(value, list):
        return [_null_out(item, nodes, rels) for item in value]
    if isinstance(value, dict):
        return {
            key: _null_out(item, nodes, rels) for key, item in value.items()
        }
    return value
