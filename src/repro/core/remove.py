"""The REMOVE clause.

"The semantics of REMOVE is straightforward, as label or property
removals may not incur any conflicts; changes induced by given removal
items are simply evaluated and applied inductively from left to right"
(Section 8.2).  Removal is idempotent, so per-record application and
atomic application coincide observably; both dialects share this code.
"""

from __future__ import annotations

from repro.errors import CypherTypeError, DeletedEntityError
from repro.graph.model import Node, Relationship
from repro.graph.values import type_name
from repro.parser import ast
from repro.runtime.context import EvalContext
from repro.runtime.expressions import evaluate
from repro.runtime.table import DrivingTable


def execute_remove(
    ctx: EvalContext,
    clause: ast.RemoveClause,
    table: DrivingTable,
    *,
    ignore_deleted: bool = False,
) -> DrivingTable:
    """Apply removal items left to right for each record.

    ``ignore_deleted=True`` gives the legacy tolerance of operating on
    deleted entities (a silent no-op); the revised dialect raises.
    """
    for record in table:
        for item in clause.items:
            _apply_item(ctx, item, record, ignore_deleted)
    return table


def _apply_item(
    ctx: EvalContext,
    item: ast.RemoveItem,
    record: dict,
    ignore_deleted: bool,
) -> None:
    if isinstance(item, ast.RemoveProperty):
        target = evaluate(ctx, item.target.subject, record)
        if target is None:
            return
        if isinstance(target, Node):
            if target.is_deleted:
                if ignore_deleted:
                    return
                raise DeletedEntityError(
                    f"cannot REMOVE property from deleted node {target.id}"
                )
            ctx.store.set_node_property(target.id, item.target.key, None)
            return
        if isinstance(target, Relationship):
            if target.is_deleted:
                if ignore_deleted:
                    return
                raise DeletedEntityError(
                    f"cannot REMOVE property from deleted relationship "
                    f"{target.id}"
                )
            ctx.store.set_rel_property(target.id, item.target.key, None)
            return
        raise CypherTypeError(
            f"REMOVE expects a Node or Relationship, got {type_name(target)}"
        )
    if isinstance(item, ast.RemoveLabels):
        target = evaluate(ctx, item.target, record)
        if target is None:
            return
        if not isinstance(target, Node):
            raise CypherTypeError(
                f"labels can only be removed from a Node, "
                f"got {type_name(target)}"
            )
        if target.is_deleted:
            if ignore_deleted:
                return
            raise DeletedEntityError(
                f"cannot REMOVE labels from deleted node {target.id}"
            )
        for label in item.labels:
            ctx.store.remove_label(target.id, label)
        return
    raise AssertionError(f"unknown REMOVE item {type(item).__name__}")
