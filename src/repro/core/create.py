"""The CREATE clause and the shared pattern-instantiation machinery.

Section 8.2 defines CREATE in three steps: *saturation* (every unnamed
entity gets a temporary variable), inductive creation of nodes then
relationships (binding variables as it goes), and projection of the
temporary variables out of the driving table.

The same instantiation routine is the write half of every MERGE
variant, so it supports an :class:`EntityCache`: before creating a node
or relationship it asks the cache for an existing instance under a
*collapse key*.  The five Section 6 MERGE semantics differ only in how
that key is built (see :mod:`repro.core.merge`); plain CREATE uses no
cache and therefore always instantiates fresh entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import CypherSemanticError, CypherTypeError
from repro.graph.model import Node, Relationship
from repro.graph.values import normalize_property_map, type_name
from repro.parser import ast
from repro.runtime.compiler import compile_map_items
from repro.runtime.context import EvalContext
from repro.runtime.table import DrivingTable

#: Identifies an element's position in a pattern tuple: (path index,
#: element index within the path).  Definitions 1-2 speak of entities
#: "matched to the same position of the input pattern"; this is that
#: position.
Position = tuple[int, int]


@dataclass
class CreatedInstance:
    """What instantiating a pattern for one record produced."""

    #: variable -> entity handle for newly bound variables
    bindings: dict[str, Any] = field(default_factory=dict)
    #: (position, node id, was_created) for every node element
    nodes: list[tuple[Position, int, bool]] = field(default_factory=list)
    #: (position, relationship id, was_created) for every rel element
    relationships: list[tuple[Position, int, bool]] = field(
        default_factory=list
    )


class EntityCache:
    """Optional dedup cache used by the MERGE collapse semantics.

    ``node_key`` / ``rel_key`` compute a hashable collapse key for a
    prospective entity (or return None to force a fresh instance);
    entities sharing a key are instantiated once and reused.
    """

    def __init__(
        self,
        node_key: Callable[[Position, tuple, tuple], Optional[tuple]],
        rel_key: Callable[[Position, str, tuple, int, int], Optional[tuple]],
    ):
        self._node_key = node_key
        self._rel_key = rel_key
        self._nodes: dict[tuple, int] = {}
        self._rels: dict[tuple, int] = {}

    def node(
        self,
        position: Position,
        labels: tuple[str, ...],
        prop_items: tuple,
        create: Callable[[], int],
    ) -> tuple[int, bool]:
        """Return (node id, was_created) for the given content."""
        key = self._node_key(position, labels, prop_items)
        if key is None:
            return create(), True
        if key in self._nodes:
            return self._nodes[key], False
        node_id = create()
        self._nodes[key] = node_id
        return node_id, True

    def relationship(
        self,
        position: Position,
        rel_type: str,
        prop_items: tuple,
        source: int,
        target: int,
        create: Callable[[], int],
    ) -> tuple[int, bool]:
        """Return (relationship id, was_created) for the given content."""
        key = self._rel_key(position, rel_type, prop_items, source, target)
        if key is None:
            return create(), True
        if key in self._rels:
            return self._rels[key], False
        rel_id = create()
        self._rels[key] = rel_id
        return rel_id, True


def instantiate_pattern(
    ctx: EvalContext,
    pattern: ast.Pattern,
    record: dict,
    cache: EntityCache | None = None,
) -> CreatedInstance:
    """Create one instance of *pattern* for *record* (the CREATE step).

    Bound node variables are reused (re-specifying labels or properties
    on them is an error); everything else is created, consulting
    *cache* when given.  Variables named in the pattern are bound in
    the returned instance so later pattern elements (and later clauses)
    can see them.
    """
    instance = CreatedInstance()
    scope = dict(record)
    for path_index, path in enumerate(pattern.paths):
        if path.variable is not None:
            raise CypherSemanticError(
                "named paths are not supported in CREATE/MERGE patterns"
            )
        previous_node_id: int | None = None
        pending_rel: ast.RelationshipPattern | None = None
        pending_rel_position: Position | None = None
        for element_index, element in enumerate(path.elements):
            position = (path_index, element_index)
            if isinstance(element, ast.NodePattern):
                node_id, created = _instantiate_node(
                    ctx, element, position, scope, instance, cache
                )
                instance.nodes.append((position, node_id, created))
                if pending_rel is not None:
                    rel_id, rel_created = _instantiate_rel(
                        ctx,
                        pending_rel,
                        pending_rel_position,
                        previous_node_id,
                        node_id,
                        scope,
                        instance,
                        cache,
                    )
                    instance.relationships.append(
                        (pending_rel_position, rel_id, rel_created)
                    )
                    pending_rel = None
                previous_node_id = node_id
            else:
                pending_rel = element
                pending_rel_position = position
    return instance


def _instantiate_node(
    ctx: EvalContext,
    element: ast.NodePattern,
    position: Position,
    scope: dict,
    instance: CreatedInstance,
    cache: EntityCache | None,
) -> tuple[int, bool]:
    variable = element.variable
    if variable is not None and variable in scope:
        value = scope[variable]
        if not isinstance(value, Node):
            raise CypherTypeError(
                f"variable '{variable}' is bound to "
                f"{type_name(value)}, expected a Node"
            )
        if element.labels or (
            element.properties is not None and element.properties.items
        ):
            raise CypherSemanticError(
                f"cannot re-specify labels or properties on the bound "
                f"variable '{variable}'"
            )
        return value.id, False
    labels = element.labels
    properties = _evaluate_properties(ctx, element.properties, scope)
    prop_items = tuple(sorted(properties.items(), key=lambda kv: kv[0]))

    def create() -> int:
        return ctx.store.create_node(labels, dict(properties))

    if cache is not None:
        node_id, created = cache.node(position, labels, prop_items, create)
    else:
        node_id, created = create(), True
    if variable is not None:
        handle = ctx.store.node(node_id)
        scope[variable] = handle
        instance.bindings[variable] = handle
    return node_id, created


def _instantiate_rel(
    ctx: EvalContext,
    element: ast.RelationshipPattern,
    position: Position,
    left_node: int,
    right_node: int,
    scope: dict,
    instance: CreatedInstance,
    cache: EntityCache | None,
) -> tuple[int, bool]:
    variable = element.variable
    if variable is not None and variable in scope:
        raise CypherSemanticError(
            f"cannot create the already bound relationship "
            f"variable '{variable}'"
        )
    if len(element.types) != 1:
        raise CypherSemanticError(
            "relationships must be created with exactly one type"
        )
    if element.direction == ast.BOTH:
        raise CypherSemanticError(
            "relationships must be created with a direction"
        )
    rel_type = element.types[0]
    if element.direction == ast.OUT:
        source, target = left_node, right_node
    else:
        source, target = right_node, left_node
    properties = _evaluate_properties(ctx, element.properties, scope)
    prop_items = tuple(sorted(properties.items(), key=lambda kv: kv[0]))

    def create() -> int:
        return ctx.store.create_relationship(
            rel_type, source, target, dict(properties)
        )

    if cache is not None:
        rel_id, created = cache.relationship(
            position, rel_type, prop_items, source, target, create
        )
    else:
        rel_id, created = create(), True
    if variable is not None:
        handle = ctx.store.relationship(rel_id)
        scope[variable] = handle
        instance.bindings[variable] = handle
    return rel_id, created


def _evaluate_properties(
    ctx: EvalContext,
    properties: ast.MapLiteral | None,
    scope: dict,
) -> dict:
    """Evaluate a pattern property map; null values mean *absent keys*.

    This is the rule that makes the null-id rows of Example 5 create
    property-less nodes (iota(n, k) = null encodes absence).
    """
    if properties is None:
        return {}
    return normalize_property_map(
        (key, fn(ctx, scope)) for key, fn in compile_map_items(properties)
    )


def execute_create(
    ctx: EvalContext, clause: ast.CreateClause, table: DrivingTable
) -> DrivingTable:
    """The CREATE clause (both dialects; CREATE never reads the graph)."""
    new_variables: list[str] = []
    for path in clause.pattern.paths:
        for element in path.elements:
            variable = element.variable
            if (
                variable is not None
                and variable not in table.columns
                and variable not in new_variables
            ):
                new_variables.append(variable)
    output = DrivingTable(tuple(table.columns) + tuple(new_variables))
    for record in table:
        instance = instantiate_pattern(ctx, clause.pattern, dict(record))
        extended = dict(record)
        extended.update(instance.bindings)
        output.add({name: extended.get(name) for name in output.columns})
    return output
