"""The revised MERGE: all five Section 6 semantics.

The formal definition (Section 8.2) is::

    [[MERGE ALL pi]](G, T) = (G_create, T_match |+| T_create)

where ``T_match`` collects every match of ``pi`` in the *input* graph
for every record, ``T_fail`` keeps the records with no match (with
multiplicity), and ``(G_create, T_create) = [[CREATE pi]](G, T_fail)``.
``MERGE SAME`` is MERGE ALL followed by the quotient under the
collapsibility relations of Definitions 1-2.

Because matching happens against the input graph only, no variant can
read its own writes -- this is what removes the Example 3 / Figure 6
nondeterminism.

Implementation note (DESIGN.md decision 1): instead of materialising
the MERGE ALL graph and then collapsing it, creation consults an
:class:`~repro.core.create.EntityCache` keyed by the collapse class, so
each equivalence class is instantiated exactly once.  The five
semantics differ only in the key:

==================  =========================  ==============================
semantics           node key                   relationship key
==================  =========================  ==============================
Atomic              fresh per record           fresh per record
Grouping            (group, position)          (group, position)
Weak Collapse       (position, labels, props)  (position, type, props, ends)
Collapse            (labels, props)            (position, type, props, ends)
Strong Collapse     (labels, props)            (type, props, ends)
==================  =========================  ==============================

where *group* is the tuple of values of the expressions appearing in
the pattern (the Grouping criterion), *ends* are the post-collapse
endpoint ids (available immediately because nodes are cached before the
relationships that use them), and equality on values is equivalence
(null = null).  ``tests/properties`` checks this construction against
the literal create-then-quotient reference in :mod:`repro.formal`.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import CypherSemanticError
from repro.graph.values import grouping_key
from repro.parser import ast
from repro.runtime.compiler import compile_map_items
from repro.runtime.context import EvalContext
from repro.runtime.matcher import match_pattern, pattern_variables
from repro.runtime.table import DrivingTable

from repro.core.create import EntityCache, Position, instantiate_pattern


class MergeSemantics(enum.Enum):
    """The five proposals of Section 6."""

    ATOMIC = "atomic"                   # shipped as MERGE ALL
    GROUPING = "grouping"
    WEAK_COLLAPSE = "weak_collapse"
    COLLAPSE = "collapse"
    STRONG_COLLAPSE = "strong_collapse"  # shipped as MERGE SAME

    @classmethod
    def from_clause(cls, semantics: str) -> "MergeSemantics":
        """Map the AST's MERGE selector to a semantics."""
        mapping = {
            ast.MERGE_ALL: cls.ATOMIC,
            ast.MERGE_SAME: cls.STRONG_COLLAPSE,
            ast.MERGE_GROUPING: cls.GROUPING,
            ast.MERGE_WEAK_COLLAPSE: cls.WEAK_COLLAPSE,
            ast.MERGE_COLLAPSE: cls.COLLAPSE,
        }
        return mapping[semantics]


def execute_merge(
    ctx: EvalContext, clause: ast.MergeClause, table: DrivingTable
) -> DrivingTable:
    """Entry point for revised MERGE clauses from the pipeline."""
    return merge(
        ctx, clause.pattern, table, MergeSemantics.from_clause(clause.semantics)
    )


def reject_null_merge_properties(pattern: ast.Pattern) -> None:
    """Reject a literal ``null`` property value in a MERGE pattern.

    ``MERGE (n:T {p: null})`` can never match (``n.p = null`` is null
    under ternary logic) yet would always create, so the statement is
    a disguised unconditional CREATE -- openCypher makes it a semantic
    error, and so do we, in every MERGE variant.  Only *literal* nulls
    are rejected: a null reaching the map through a variable or
    parameter keeps the paper's Example 5 semantics (the property is
    simply not stored on the created entity).
    """
    for path in pattern.paths:
        for element in path.elements:
            if element.properties is None:
                continue
            for key, value in element.properties.items:
                if isinstance(value, ast.Literal) and value.value is None:
                    raise CypherSemanticError(
                        f"cannot merge using null property value "
                        f"for '{key}'"
                    )


def merge(
    ctx: EvalContext,
    pattern: ast.Pattern,
    table: DrivingTable,
    semantics: MergeSemantics,
) -> DrivingTable:
    """Run one MERGE with the chosen semantics over the driving table."""
    reject_null_merge_properties(pattern)
    new_variables = [
        name
        for name in pattern_variables(pattern)
        if name not in table.columns
    ]
    output = DrivingTable(tuple(table.columns) + tuple(new_variables))
    # Phase 1 (read): match every record against the INPUT graph.
    failing: list[dict] = []
    for record in table:
        matched_any = False
        for bindings in match_pattern(ctx, pattern, record):
            matched_any = True
            output.add({name: bindings.get(name) for name in output.columns})
        if not matched_any:
            failing.append(dict(record))
    # Phase 2 (write): one instantiation per collapse class.  The key
    # functions close over `current_group`, updated before each record.
    current_group: list[tuple] = [()]
    cache = _build_cache(semantics, current_group)
    for record in failing:
        current_group[0] = _merge_group_key(ctx, pattern, record, semantics)
        instance = instantiate_pattern(ctx, pattern, record, cache)
        extended = dict(record)
        extended.update(instance.bindings)
        output.add({name: extended.get(name) for name in output.columns})
    return output


# ---------------------------------------------------------------------------
# Cache construction
# ---------------------------------------------------------------------------

def _build_cache(
    semantics: MergeSemantics, current_group: list[tuple]
) -> EntityCache | None:
    if semantics is MergeSemantics.ATOMIC:
        return None

    if semantics is MergeSemantics.GROUPING:

        def node_key(position: Position, labels, props):
            return ("g", current_group[0], position)

        def rel_key(position: Position, rel_type, props, source, target):
            return ("g", current_group[0], position)

    elif semantics is MergeSemantics.WEAK_COLLAPSE:

        def node_key(position, labels, props):
            return ("n", position, frozenset(labels), _canonical(props))

        def rel_key(position, rel_type, props, source, target):
            return ("r", position, rel_type, _canonical(props), source, target)

    elif semantics is MergeSemantics.COLLAPSE:

        def node_key(position, labels, props):
            return ("n", frozenset(labels), _canonical(props))

        def rel_key(position, rel_type, props, source, target):
            return ("r", position, rel_type, _canonical(props), source, target)

    else:  # STRONG_COLLAPSE

        def node_key(position, labels, props):
            return ("n", frozenset(labels), _canonical(props))

        def rel_key(position, rel_type, props, source, target):
            return ("r", rel_type, _canonical(props), source, target)

    return EntityCache(node_key=node_key, rel_key=rel_key)


def _canonical(prop_items: tuple) -> tuple:
    """Hashable, equivalence-respecting form of a property item tuple."""
    return tuple((key, grouping_key(value)) for key, value in prop_items)


# ---------------------------------------------------------------------------
# Grouping key
# ---------------------------------------------------------------------------

def _merge_group_key(
    ctx: EvalContext,
    pattern: ast.Pattern,
    record: dict,
    semantics: MergeSemantics,
) -> tuple:
    """The Grouping criterion: the values of the expressions appearing
    in the pattern, plus the identities of bound variables.

    Only the GROUPING semantics uses it; ATOMIC creates fresh instances
    per record (no cache) and the collapse variants key on content.
    """
    if semantics is not MergeSemantics.GROUPING:
        return ()
    parts: list = []
    for path in pattern.paths:
        for element in path.elements:
            variable = element.variable
            if variable is not None and variable in record:
                value = record[variable]
                parts.append(
                    grouping_key(value) if value is not None else ("null",)
                )
            properties: Optional[ast.MapLiteral] = element.properties
            if properties is not None:
                for __, fn in compile_map_items(properties):
                    parts.append(grouping_key(fn(ctx, record)))
    return tuple(parts)
