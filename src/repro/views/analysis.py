"""Static analysis of registered view queries.

:func:`analyse` decides whether a read-only statement is *delta
maintainable* -- whether the registry can keep its result current by
re-evaluating only the records touched by each committed redo-op batch
-- and, if so, produces the :class:`ViewPlan` the maintenance loop
consumes.  Queries outside the supported shape fall back to full
re-execution on the next relevant commit; the registry stays correct
either way, the plan only changes the cost.

The delta-supported shape is::

    MATCH <one path, fixed length, non-OPTIONAL> [WHERE ...]
    (UNWIND ... | WITH ...)*
    RETURN ...

with no UNION, no variable-length relationships, no pattern predicates
(``exists((n)-->())`` and friends read graph structure beyond the
row's own entities), no aggregates, and no path variable.  Everything
after the MATCH is a deterministic function of the match's binding
table, so it is re-applied over the *maintained* bindings at refresh
time -- the delta rules only have to keep the binding table itself
equal to what a fresh MATCH would produce.

Anonymous pattern elements get fresh internal variables (``__view``
prefix) so every maintained binding row names all of its entities;
those columns are provenance only and are dropped before the
post-MATCH clauses run.

The :class:`Footprint` is the precise-invalidation half: a sound
over-approximation of the labels, relationship types and property
keys the view depends on.  A committed batch whose every operation is
irrelevant under the footprint advances the view's covered LSN without
recomputing anything -- the cached result object survives by identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.parser import ast
from repro.runtime.aggregation import children, contains_aggregate

#: Prefix for internal variables assigned to anonymous pattern elements.
INTERNAL_PREFIX = "__view"

#: Function names whose result depends on a property/label set we
#: cannot enumerate statically; their presence widens the footprint.
_DYNAMIC_FUNCTIONS = frozenset({"properties", "keys", "labels"})

#: Expression node types the footprint walk understands.  Anything
#: else is treated conservatively (the footprint widens to "anything").
_KNOWN_EXPRESSIONS = (
    ast.Literal,
    ast.Parameter,
    ast.Variable,
    ast.Property,
    ast.ListLiteral,
    ast.MapLiteral,
    ast.Unary,
    ast.Binary,
    ast.IsNull,
    ast.HasLabels,
    ast.FunctionCall,
    ast.CountStar,
    ast.CaseExpression,
    ast.ListComprehension,
    ast.Quantifier,
    ast.Reduce,
    ast.Subscript,
    ast.Slice,
    ast.HoistedExpression,
)


@dataclass
class Footprint:
    """What parts of the graph a view's result can depend on.

    ``match_*`` fields over-approximate the MATCH side (which rows
    exist); ``output_*`` the projection side (what the rows render
    as).  ``match_all`` / ``output_all`` mean the respective side could
    not be bounded and every operation of that flavour is relevant.
    """

    #: per node position: required label set (empty = unlabeled)
    label_sets: tuple[frozenset, ...] = ()
    #: per relationship position: allowed type set (empty = any type)
    type_sets: tuple[frozenset, ...] = ()
    #: all labels named anywhere (pattern positions + HasLabels)
    labels: frozenset = frozenset()
    #: all property keys named anywhere (pattern maps + Property)
    keys: frozenset = frozenset()
    match_all: bool = False
    output_all: bool = False

    def op_relevant(
        self,
        op: tuple,
        node_prov: Iterable[int],
        rel_prov: Iterable[int],
    ) -> bool:
        """Could *op* change this view's result?

        *node_prov* / *rel_prov* are the entity ids currently bound in
        maintained rows.  Must err toward ``True``: a ``False`` skips
        maintenance for the whole batch.
        """
        if self.match_all:
            return True
        kind = op[0]
        if kind == "create_node":
            if self.type_sets:
                # A new node alone cannot extend a path with
                # relationship steps; the enabling create_rel is its
                # own (relevant) op.
                return False
            op_labels = set(op[2])
            return any(
                required <= op_labels for required in self.label_sets
            )
        if kind == "create_rel":
            if not self.type_sets:
                return False
            return any(
                not allowed or op[2] in allowed
                for allowed in self.type_sets
            )
        if kind == "delete_node":
            return op[1] in node_prov
        if kind == "delete_rel":
            return op[1] in rel_prov
        if kind in ("add_label", "remove_label"):
            return op[2] in self.labels or op[1] in node_prov
        if kind == "set_node_prop":
            return op[2] in self.keys or (
                self.output_all and op[1] in node_prov
            )
        if kind == "set_rel_prop":
            return op[2] in self.keys or (
                self.output_all and op[1] in rel_prov
            )
        return True  # unknown op kind: never skip


@dataclass
class ViewPlan:
    """Everything delta maintenance needs, precomputed at registration."""

    #: the match clause with internal variables assigned everywhere
    match_clause: ast.MatchClause
    #: the clauses after the MATCH, ending in the RETURN (unmodified)
    post_clauses: tuple[ast.Clause, ...]
    #: node variable per node position (internal names included)
    node_vars: tuple[str, ...]
    #: relationship variable per step (internal names included)
    rel_vars: tuple[str, ...]
    #: user-visible columns fed to the post-MATCH clauses
    visible_vars: tuple[str, ...]
    footprint: Footprint = field(default_factory=Footprint)


class _Widen(Exception):
    """Raised by the footprint walk on an unanalysable construct."""


def analyse(statement: ast.Statement) -> ViewPlan | None:
    """The delta plan for *statement*, or ``None`` for full refresh."""
    query = statement.query
    if not isinstance(query, ast.SingleQuery):
        return None
    clauses = query.clauses
    if len(clauses) < 2 or not isinstance(clauses[0], ast.MatchClause):
        return None
    match = clauses[0]
    if match.optional or len(match.pattern.paths) != 1:
        return None
    path = match.pattern.paths[0]
    if path.variable is not None:
        return None
    if any(rel.is_var_length for rel in path.relationships):
        return None
    if not isinstance(clauses[-1], ast.ReturnClause):
        return None
    for clause in clauses[1:-1]:
        if not isinstance(clause, (ast.WithClause, ast.UnwindClause)):
            return None
    if any(_clause_has_aggregate(clause) for clause in clauses):
        return None
    try:
        if any(
            _has_pattern_predicate(expr)
            for expr in _clause_expressions(clauses)
        ):
            return None
    except _Widen:
        return None
    rewritten, node_vars, rel_vars, visible = _assign_internal(match)
    footprint = _footprint(rewritten, clauses[1:])
    return ViewPlan(
        match_clause=rewritten,
        post_clauses=tuple(clauses[1:]),
        node_vars=node_vars,
        rel_vars=rel_vars,
        visible_vars=visible,
        footprint=footprint,
    )


def _assign_internal(
    match: ast.MatchClause,
) -> tuple[ast.MatchClause, tuple, tuple, tuple]:
    """Give every anonymous pattern element an internal variable."""
    path = match.pattern.paths[0]
    counter = 0
    elements = []
    node_vars: list[str] = []
    rel_vars: list[str] = []
    visible: list[str] = []
    seen: set[str] = set()
    for element in path.elements:
        variable = element.variable
        if variable is None:
            variable = f"{INTERNAL_PREFIX}{counter}"
            counter += 1
            element = replace(element, variable=variable)
        elif variable not in seen:
            seen.add(variable)
            visible.append(variable)
        if isinstance(element, ast.NodePattern):
            node_vars.append(variable)
        else:
            rel_vars.append(variable)
        elements.append(element)
    rewritten = replace(
        match,
        pattern=ast.Pattern(
            paths=(replace(path, elements=tuple(elements)),)
        ),
    )
    return rewritten, tuple(node_vars), tuple(rel_vars), tuple(visible)


def _clause_has_aggregate(clause: ast.Clause) -> bool:
    body = getattr(clause, "body", None)
    if body is None:
        return False
    return any(contains_aggregate(item.expression) for item in body.items)


def _clause_expressions(
    clauses: tuple[ast.Clause, ...],
) -> Iterator[ast.Expression]:
    """Every top-level expression of the clause sequence."""
    for clause in clauses:
        if isinstance(clause, ast.MatchClause):
            for path in clause.pattern.paths:
                for element in path.elements:
                    if element.properties is not None:
                        yield element.properties
            if clause.where is not None:
                yield clause.where
        elif isinstance(clause, ast.UnwindClause):
            yield clause.expression
        elif isinstance(clause, (ast.WithClause, ast.ReturnClause)):
            body = clause.body
            for item in body.items:
                yield item.expression
            for sort in body.order_by:
                yield sort.expression
            if body.skip is not None:
                yield body.skip
            if body.limit is not None:
                yield body.limit
            where = getattr(clause, "where", None)
            if where is not None:
                yield where


def _has_pattern_predicate(expression: ast.Expression) -> bool:
    """True if the expression reads graph structure beyond the row."""
    if isinstance(expression, ast.PatternExpression):
        return True
    if isinstance(expression, ast.ExistsExpression) and not isinstance(
        expression.argument, ast.Expression
    ):
        return True
    return any(
        _has_pattern_predicate(child) for child in children(expression)
    )


def _footprint(
    match: ast.MatchClause, post: tuple[ast.Clause, ...]
) -> Footprint:
    path = match.pattern.paths[0]
    label_sets = []
    type_sets = []
    labels: set[str] = set()
    keys: set[str] = set()
    for element in path.elements:
        if isinstance(element, ast.NodePattern):
            label_sets.append(frozenset(element.labels))
            labels.update(element.labels)
        else:
            type_sets.append(frozenset(element.types))
        if element.properties is not None:
            keys.update(element.properties.keys())
    match_all = False
    output_all = False
    try:
        exprs = []
        for element in path.elements:
            if element.properties is not None:
                exprs.append(element.properties)
        if match.where is not None:
            exprs.append(match.where)
        for expr in exprs:
            _scan(expr, labels, keys)
    except _Widen:
        match_all = True
    try:
        for expr in _clause_expressions(post):
            _scan(expr, labels, keys)
        if any(
            _projects_entities(clause)
            for clause in post
            if isinstance(clause, (ast.WithClause, ast.ReturnClause))
        ):
            output_all = True
    except _Widen:
        output_all = True
    return Footprint(
        label_sets=tuple(label_sets),
        type_sets=tuple(type_sets),
        labels=frozenset(labels),
        keys=frozenset(keys),
        match_all=match_all,
        output_all=output_all,
    )


def _projects_entities(clause) -> bool:
    """True if the projection can expose a whole entity.

    A projected entity renders every property it has, so any property
    change on a bound entity invalidates the cached rows even when the
    key is named nowhere in the query.
    """
    body = clause.body
    if body.include_existing:
        return True
    return any(
        isinstance(item.expression, ast.Variable) for item in body.items
    )


def _scan(expression, labels: set[str], keys: set[str]) -> None:
    """Collect labels/keys; raise :class:`_Widen` when unboundable."""
    if isinstance(expression, ast.Property):
        keys.add(expression.key)
        # Descend past a plain-variable subject (the variable itself is
        # not "the entity rendered whole", just the property read).
        if not isinstance(expression.subject, ast.Variable):
            _scan(expression.subject, labels, keys)
        return
    if isinstance(expression, ast.HasLabels):
        labels.update(expression.labels)
        return
    if isinstance(expression, ast.MapLiteral):
        keys.update(expression.keys())
    if (
        isinstance(expression, ast.FunctionCall)
        and expression.name in _DYNAMIC_FUNCTIONS
    ):
        raise _Widen()
    if not isinstance(expression, _KNOWN_EXPRESSIONS):
        raise _Widen()
    for child in children(expression):
        _scan(child, labels, keys)
