"""Materialized views maintained from the committed redo-op stream.

A :class:`ViewRegistry` attaches to one :class:`GraphStore` as a commit
observer.  Registered read-only queries are materialized once and then
kept current *incrementally*: every committed statement's redo ops are
queued per view, and on the next read the view either

* proves the whole backlog irrelevant under its :class:`Footprint` and
  keeps the cached result **by object identity** (precise
  invalidation),
* replays the delta rules -- re-matching only the records whose bound
  entities were touched -- and re-projects (delta-maintainable
  shapes), or
* re-executes from scratch (conservative fallback for aggregates,
  var-length paths, OPTIONAL MATCH, unions, ...).

Maintenance is *lazy*: commits only enqueue (O(ops) per view), reads
pay for catching up.  That keeps the write path unslowed and means a
burst of writes between two reads is coalesced into one refresh.

Equivalence with full re-execution is the contract -- exact record
order under the legacy dialect (planner-off naive enumeration order),
bag equality under the revised dialect -- and is enforced end to end
by ``python -m repro.fuzz --views N`` and the Hypothesis suite in
``tests/properties/test_view_maintenance.py``.

Consistency with transactions and snapshot reads:

* ops are observed only at *commit* (statement-level autocommit or
  ``commit_transaction``); rolled-back work never reaches a view;
* while a multi-statement transaction is open, or while the store is
  rewound inside a :meth:`GraphStore.reverted_to` bracket, refresh is
  suspended and reads serve the last published (fully consistent)
  result -- a snapshot reader can never observe half-applied view
  state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import RLock
from typing import Any, Callable, Mapping, Optional

from repro.dialect import Dialect
from repro.engine import CypherEngine, statement_is_read_only
from repro.errors import CypherError, TransactionError
from repro.graph.store import GraphStore
from repro.parser import ast
from repro.runtime.context import EvalContext, MatchMode
from repro.runtime.pipeline import execute_clauses
from repro.runtime.table import DrivingTable
from repro.views.analysis import ViewPlan, analyse


@dataclass(frozen=True)
class ViewResult:
    """One published materialization of a view."""

    columns: tuple[str, ...]
    records: tuple[dict, ...]
    #: store LSN this result was computed at
    lsn: int

    def to_dicts(self) -> list[dict]:
        return [dict(record) for record in self.records]


@dataclass
class ViewStats:
    """Per-view maintenance accounting (the ``:views`` surface)."""

    view_id: str
    source: str
    dialect: str
    mode: str  # "delta" or "full"
    registered_lsn: int
    covered_lsn: int = 0
    rows: int = 0
    #: commit batches enqueued since registration
    batches_seen: int = 0
    #: batches proven irrelevant (cache kept by identity)
    batches_skipped: int = 0
    #: delta refreshes performed (delta mode only)
    delta_refreshes: int = 0
    #: full recomputations (initial materialization included)
    full_refreshes: int = 0
    #: cumulative seconds spent maintaining (delta + full)
    maintenance_s: float = 0.0
    #: seconds of the most recent full re-execution (the cost a
    #: non-maintained reader would pay per read)
    reexec_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "id": self.view_id,
            "source": self.source,
            "dialect": self.dialect,
            "mode": self.mode,
            "registered_lsn": self.registered_lsn,
            "covered_lsn": self.covered_lsn,
            "rows": self.rows,
            "batches_seen": self.batches_seen,
            "batches_skipped": self.batches_skipped,
            "delta_refreshes": self.delta_refreshes,
            "full_refreshes": self.full_refreshes,
            "maintenance_s": self.maintenance_s,
            "reexec_s": self.reexec_s,
        }


@dataclass
class _Entry:
    """One maintained binding row of a delta view.

    ``key`` reproduces the naive matcher's enumeration order for a
    single fixed-length path: anchor node id, then relationship ids in
    step order.  Keeping the entry list sorted by it keeps delta
    results byte-equal to planner-off re-execution in *both* dialects.
    """

    key: tuple
    node_ids: tuple[int, ...]
    rel_ids: tuple[int, ...]
    bindings: dict


class View:
    """A registered query plus its maintained state."""

    def __init__(
        self,
        view_id: str,
        source: str,
        statement: ast.Statement,
        dialect: Dialect,
        parameters: Mapping[str, Any],
        store: GraphStore,
        match_mode: MatchMode,
        extended_merge: bool = False,
    ):
        self.id = view_id
        self.source = source
        self.statement = statement
        self.dialect = dialect
        self.parameters = dict(parameters)
        self._store = store
        self._match_mode = match_mode
        self.plan: Optional[ViewPlan] = analyse(statement)
        #: fallback executor; planner off = the order-defining naive
        #: reference surface in both dialects
        self._engine = CypherEngine(
            store,
            dialect,
            extended_merge=extended_merge,
            match_mode=match_mode,
            use_planner=False,
            workers=1,
        )
        self._entries: list[_Entry] = []
        self._pending: list[tuple[int, tuple]] = []
        self._result: Optional[ViewResult] = None
        self.stats = ViewStats(
            view_id=view_id,
            source=source,
            dialect=dialect.value,
            mode="delta" if self.plan is not None else "full",
            registered_lsn=store.lsn,
        )
        self._materialize()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def covered_lsn(self) -> int:
        """Highest store LSN this view is known current through."""
        return self.stats.covered_lsn

    def result(self) -> ViewResult:
        """The current result, catching up on pending commits first.

        Unchanged (or provably irrelevant) backlogs return the cached
        :class:`ViewResult` *object* -- callers can use identity as a
        no-change fast path.
        """
        self._refresh()
        assert self._result is not None
        return self._result

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _enqueue(self, lsn: int, ops: tuple) -> None:
        self._pending.append((lsn, ops))
        self.stats.batches_seen += 1

    def _refresh(self) -> None:
        store = self._store
        if store.in_transaction() or store.in_reverted_read:
            # The store is mid-transaction or rewound to an older
            # snapshot: pending batches describe state we must not read
            # right now.  Serve the last published result untouched.
            return
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        covered = pending[-1][0]
        relevant = self._any_relevant(pending)
        if not relevant:
            self.stats.batches_skipped += len(pending)
            self.stats.covered_lsn = covered
            return
        started = time.perf_counter()
        if self.plan is None:
            self._full_refresh(covered)
        else:
            ops = [op for _, batch in pending for op in batch]
            self._delta_refresh(ops, covered)
        self.stats.maintenance_s += time.perf_counter() - started

    def _any_relevant(self, pending: list[tuple[int, tuple]]) -> bool:
        if self.plan is None:
            # Fallback views have no footprint model beyond "did
            # anything change": any committed batch invalidates.
            return True
        footprint = self.plan.footprint
        node_prov: set[int] = set()
        rel_prov: set[int] = set()
        for entry in self._entries:
            node_prov.update(entry.node_ids)
            rel_prov.update(entry.rel_ids)
        return any(
            footprint.op_relevant(op, node_prov, rel_prov)
            for _, batch in pending
            for op in batch
        )

    def _materialize(self) -> None:
        started = time.perf_counter()
        self._full_refresh(self._store.lsn)
        self.stats.maintenance_s += time.perf_counter() - started

    def _full_refresh(self, covered: int) -> None:
        started = time.perf_counter()
        if self.plan is not None:
            # Rebuild the binding table too, so delta maintenance can
            # resume from the fresh state.
            self._entries = self._match_entries()
            self._publish(covered)
        else:
            result = self._engine.execute(self.statement, self.parameters)
            self._result = ViewResult(
                columns=result.columns,
                records=tuple(result.records),
                lsn=covered,
            )
            self.stats.covered_lsn = covered
            self.stats.rows = len(self._result.records)
        self.stats.full_refreshes += 1
        self.stats.reexec_s = time.perf_counter() - started

    def _match_entries(self) -> list[_Entry]:
        plan = self.plan
        assert plan is not None
        ctx = self._eval_context()
        out = execute_clauses(
            ctx, (plan.match_clause,), DrivingTable.unit(), self.dialect
        )
        entries = [
            self._entry_for(record) for record in out.to_dicts()
        ]
        entries.sort(key=lambda entry: entry.key)
        return entries

    def _entry_for(self, bindings: dict) -> _Entry:
        plan = self.plan
        assert plan is not None
        node_ids = tuple(bindings[v].id for v in plan.node_vars)
        rel_ids = tuple(bindings[v].id for v in plan.rel_vars)
        return _Entry(
            key=(node_ids[0],) + rel_ids,
            node_ids=node_ids,
            rel_ids=rel_ids,
            bindings=bindings,
        )

    def _delta_refresh(self, ops: list[tuple], covered: int) -> None:
        plan = self.plan
        assert plan is not None
        store = self._store
        affected: set[int] = set()
        dead_nodes: set[int] = set()
        dead_rels: set[int] = set()
        for op in ops:
            kind = op[0]
            if kind == "create_node":
                affected.add(op[1])
            elif kind == "create_rel":
                affected.add(op[3])
                affected.add(op[4])
            elif kind == "delete_node":
                dead_nodes.add(op[1])
            elif kind == "delete_rel":
                dead_rels.add(op[1])
            elif kind in ("add_label", "remove_label", "set_node_prop"):
                affected.add(op[1])
            elif kind == "set_rel_prop":
                # A changed relationship invalidates every row binding
                # it; re-driving both endpoints regenerates those rows
                # with fresh values.  If the relationship was deleted
                # later in the same backlog, delete_rel covers it.
                if store.has_relationship(op[1]):
                    affected.add(store.rel_source(op[1]))
                    affected.add(store.rel_target(op[1]))
                else:
                    dead_rels.add(op[1])
            else:  # unknown op kind: stay correct, not fast
                self._full_refresh(covered)
                return
        stale = affected | dead_nodes
        kept = [
            entry
            for entry in self._entries
            if not (
                stale.intersection(entry.node_ids)
                or dead_rels.intersection(entry.rel_ids)
            )
        ]
        live = sorted(
            i for i in affected - dead_nodes if store.has_node(i)
        )
        fresh: list[_Entry] = []
        if live:
            live_set = set(live)
            starts = self._seed_starts(live_set)
            var0 = plan.node_vars[0]
            table = DrivingTable(
                (var0,), [{var0: store.node(i)} for i in starts]
            )
            out = execute_clauses(
                self._eval_context(),
                (plan.match_clause,),
                table,
                self.dialect,
            )
            for record in out.to_dicts():
                entry = self._entry_for(record)
                # Rows with no affected node survive in ``kept``; only
                # touched rows are regenerated (each exactly once --
                # one driving row per distinct start node).
                if live_set.intersection(entry.node_ids):
                    fresh.append(entry)
        self._entries = sorted(
            kept + fresh, key=lambda entry: entry.key
        )
        self._publish(covered)
        self.stats.delta_refreshes += 1

    def _seed_starts(self, live_set: set[int]) -> list[int]:
        """Candidate position-0 nodes for rows touching a live node.

        A row binding an affected node at position *k* starts at a
        node reachable by walking the pattern's first *k* steps
        backwards from it.  One backward dynamic-programming pass
        computes the union over every *k*: ``C_j`` is the node set
        that could occupy position *j* on a row passing through an
        affected node at position >= *j*; stepping ``C_{j+1}`` back
        through step *j* (ignoring labels and property maps -- the
        forward re-match filters exactly) and adding the affected set
        yields ``C_j``.  The result is proportional to the affected
        neighbourhood, never to the store.
        """
        store = self._store
        frontier = set(live_set)
        for step in reversed(self._rel_steps()):
            types = step.types or None
            outgoing = step.direction in (ast.IN, ast.BOTH)
            incoming = step.direction in (ast.OUT, ast.BOTH)
            previous: set[int] = set()
            for node_id in frontier:
                if not store.has_node(node_id):
                    continue
                for rel_id in store.adjacent_rel_ids(
                    node_id,
                    outgoing=outgoing,
                    incoming=incoming,
                    types=types,
                ):
                    source = store.rel_source(rel_id)
                    target = store.rel_target(rel_id)
                    previous.add(source if target == node_id else target)
            frontier = previous | live_set
        return sorted(i for i in frontier if store.has_node(i))

    def _rel_steps(self) -> list[ast.RelationshipPattern]:
        assert self.plan is not None
        path = self.plan.match_clause.pattern.paths[0]
        return [
            element
            for element in path.elements
            if isinstance(element, ast.RelationshipPattern)
        ]

    def _publish(self, covered: int) -> None:
        """Re-project the maintained binding table into the result."""
        plan = self.plan
        assert plan is not None
        rows = [
            {v: entry.bindings[v] for v in plan.visible_vars}
            for entry in self._entries
        ]
        table = DrivingTable(plan.visible_vars, rows)
        out = execute_clauses(
            self._eval_context(), plan.post_clauses, table, self.dialect
        )
        self._result = ViewResult(
            columns=out.columns,
            records=tuple(out.to_dicts()),
            lsn=covered,
        )
        self.stats.covered_lsn = covered
        self.stats.rows = len(self._result.records)

    def _eval_context(self) -> EvalContext:
        return EvalContext(
            store=self._store,
            parameters=self.parameters,
            match_mode=self._match_mode,
            use_planner=False,
            preserve_match_order=self.dialect is Dialect.CYPHER9,
            workers=1,
        )


class ViewRegistry:
    """All views over one store, fed from its commit-observer stream."""

    def __init__(
        self,
        store: GraphStore,
        *,
        match_mode: MatchMode | str = MatchMode.TRAIL,
        extended_merge: bool = False,
    ):
        self._store = store
        self._match_mode = (
            match_mode
            if isinstance(match_mode, MatchMode)
            else MatchMode(match_mode)
        )
        self._extended_merge = extended_merge
        self._views: dict[str, View] = {}
        #: semantic cache: identical (source, dialect, params) share
        #: one maintained materialization
        self._by_query: dict[tuple, str] = {}
        self._counter = 0
        self._lock = RLock()
        self._listeners: list[Callable[[int], None]] = []
        self._closed = False
        store.add_commit_observer(self._on_commit)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        source: str,
        *,
        dialect: Dialect | str = Dialect.REVISED,
        parameters: Mapping[str, Any] | None = None,
    ) -> View:
        """Register (or share) a read-only query as a maintained view."""
        dialect = Dialect.parse(dialect)
        parameters = dict(parameters or {})
        with self._lock:
            if self._closed:
                raise CypherError("view registry is closed")
            if (
                self._store.in_transaction()
                or self._store.in_reverted_read
            ):
                raise TransactionError(
                    "cannot register a view inside an open transaction"
                )
            key = self._query_key(source, dialect, parameters)
            existing = self._by_query.get(key)
            if existing is not None and existing in self._views:
                return self._views[existing]
            engine = CypherEngine(
                self._store,
                dialect,
                extended_merge=self._extended_merge,
                match_mode=self._match_mode,
            )
            statement = engine.parse(source)
            if isinstance(
                statement, ast.SchemaStatement
            ) or not statement_is_read_only(statement):
                raise CypherError(
                    "only read-only queries can be registered as views"
                )
            self._counter += 1
            view_id = f"v{self._counter}"
            view = View(
                view_id,
                source,
                statement,
                dialect,
                parameters,
                self._store,
                self._match_mode,
                self._extended_merge,
            )
            self._views[view_id] = view
            self._by_query[key] = view_id
            return view

    @staticmethod
    def _query_key(
        source: str, dialect: Dialect, parameters: dict
    ) -> tuple:
        try:
            param_sig = tuple(sorted(parameters.items(), key=repr))
            hash(param_sig)
        except TypeError:
            param_sig = repr(sorted(parameters.items(), key=repr))
        return (source, dialect, param_sig)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, view_id: str) -> View:
        with self._lock:
            view = self._views.get(view_id)
        if view is None:
            raise CypherError(f"unknown view {view_id!r}")
        return view

    def views(self) -> list[View]:
        with self._lock:
            return list(self._views.values())

    def result(self, view_id: str) -> ViewResult:
        view = self.get(view_id)
        with self._lock:
            return view.result()

    def drop(self, view_id: str) -> None:
        with self._lock:
            view = self._views.pop(view_id, None)
            if view is None:
                raise CypherError(f"unknown view {view_id!r}")
            self._by_query = {
                key: vid
                for key, vid in self._by_query.items()
                if vid != view_id
            }

    def stats(self) -> list[dict]:
        """Per-view maintenance accounting, refreshed to now."""
        with self._lock:
            rows = []
            for view in self._views.values():
                view._refresh()
                rows.append(view.stats.as_dict())
            return rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    # ------------------------------------------------------------------
    # Commit stream
    # ------------------------------------------------------------------

    def _on_commit(self, lsn: int, ops: tuple) -> None:
        with self._lock:
            if self._closed:
                return
            for view in self._views.values():
                view._enqueue(lsn, ops)
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(lsn)

    def add_change_listener(
        self, listener: Callable[[int], None]
    ) -> None:
        """Call *listener(lsn)* after every committed batch (cheap;
        used by the server to wake long-polling subscribers)."""
        with self._lock:
            self._listeners.append(listener)

    def remove_change_listener(
        self, listener: Callable[[int], None]
    ) -> None:
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._views.clear()
            self._by_query.clear()
            self._listeners.clear()
        self._store.remove_commit_observer(self._on_commit)
