"""Incremental view maintenance over the committed redo-op stream.

See :mod:`repro.views.registry` for the maintenance model and
:mod:`repro.views.analysis` for the delta-supported query shape.
"""

from repro.views.analysis import Footprint, ViewPlan, analyse
from repro.views.registry import View, ViewRegistry, ViewResult, ViewStats

__all__ = [
    "Footprint",
    "View",
    "ViewPlan",
    "ViewRegistry",
    "ViewResult",
    "ViewStats",
    "analyse",
]
