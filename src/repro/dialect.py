"""Dialect selection: legacy Cypher 9 vs the paper's revision.

The dialect governs both the grammar (Figures 2-5 vs Figure 10) and the
update semantics (Section 3 vs Sections 7-8).  See DESIGN.md for the
full feature matrix.
"""

from __future__ import annotations

import enum


class Dialect(enum.Enum):
    """Which version of Cypher the engine speaks."""

    #: The Cypher 9 behaviour described in Section 3, including the
    #: anomalies of Section 4 (non-atomic SET/DELETE, read-own-writes
    #: MERGE, mandatory WITH between updates and reads).
    CYPHER9 = "cypher9"

    #: The revised language of Sections 7-8: atomic SET (conflicts are
    #: errors), strict DELETE, MERGE ALL / MERGE SAME, free clause
    #: interleaving.
    REVISED = "revised"

    @classmethod
    def parse(cls, value: "Dialect | str") -> "Dialect":
        """Coerce a string ('cypher9' / 'revised') or Dialect instance."""
        if isinstance(value, Dialect):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError):
            names = ", ".join(d.value for d in cls)
            raise ValueError(
                f"unknown dialect {value!r}; expected one of: {names}"
            ) from None
