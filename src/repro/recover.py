"""Standalone recovery CLI: ``python -m repro.recover <directory>``.

Loads the latest checkpoint, replays the write-ahead log (discarding
any torn tail), verifies the store invariants, and prints a report.
With ``--checkpoint`` the recovered state is compacted into a fresh
checkpoint (truncating the WAL) -- streaming format 2 by default,
``--format blob`` for a legacy format-1 downgrade, which also makes
this CLI the format converter in both directions; with ``--json`` the
recovered graph is printed as canonical graph JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import PersistenceError
from repro.graph.store import GraphStore
from repro.persistence import (
    CHECKPOINT_FORMAT,
    LEGACY_CHECKPOINT_FORMAT,
    PersistenceManager,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.recover",
        description="Recover a persisted graph from checkpoint + WAL.",
    )
    parser.add_argument(
        "directory", help="persistence directory (checkpoint.json, wal.log)"
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a fresh checkpoint of the recovered state "
        "(compacts and truncates the WAL)",
    )
    parser.add_argument(
        "--format",
        choices=("stream", "blob"),
        default="stream",
        help="checkpoint format for --checkpoint: 'stream' (format 2, "
        "O(1) memory, default) or 'blob' (legacy format 1)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the recovered graph as canonical graph JSON",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the store-invariant re-verification",
    )
    args = parser.parse_args(argv)

    store = GraphStore()
    manager = PersistenceManager(args.directory)
    try:
        report = manager.recover(store, verify=not args.no_verify)
    except PersistenceError as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        return 1
    print(f"recovered: {report.summary()}")
    if report.checkpoint_format:
        kind = "stream" if report.checkpoint_format == 2 else "blob"
        print(f"checkpoint format: {report.checkpoint_format} ({kind})")
    if not args.no_verify:
        print("invariants: ok")
    if args.checkpoint:
        format = (
            CHECKPOINT_FORMAT
            if args.format == "stream"
            else LEGACY_CHECKPOINT_FORMAT
        )
        manager.checkpoint(store, format=format)
        print(
            f"checkpoint written (format {format}, lsn {manager.lsn}), "
            "WAL truncated"
        )
    if args.json:
        from repro.testing.invariants import canonical_graph_json

        print(canonical_graph_json(store))
    manager.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
