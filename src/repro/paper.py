"""The paper's concrete artifacts, encoded once.

Every worked example in "Updating Graph Databases with Cypher" uses a
specific input graph, driving table and statement.  This module encodes
them all so the unit tests, the examples and the benchmark harness
share a single source of truth:

* :func:`figure1_graph` -- the marketplace graph of Figure 1 (solid
  lines only; Queries 2 and 5 add the dotted/dashed parts);
* ``QUERY_1`` ... ``QUERY_5`` -- the numbered statements of Sections
  2-3;
* :func:`example3_graph` / :func:`example3_table` + ``EXAMPLE_3_MERGE``
  -- the nondeterministic MERGE scenario of Example 3 / Figure 6;
* :func:`example5_table` + ``EXAMPLE_5_PATTERN`` -- the cid/pid/date
  table of Example 5 / Figure 7;
* :func:`example6_table` + ``EXAMPLE_6_PATTERN`` -- Example 6 /
  Figure 8;
* :func:`example7_graph_and_table` + ``EXAMPLE_7_PATTERN`` --
  Example 7 / Figure 9;
* ``FIGURE*_EXPECTED`` -- the (node count, relationship count) shapes
  of every output graph figure.
"""

from __future__ import annotations

from repro.graph.store import GraphStore
from repro.runtime.table import DrivingTable

# ---------------------------------------------------------------------------
# Figure 1 (running example) and the numbered queries
# ---------------------------------------------------------------------------

QUERY_1 = (
    "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
    "WHERE p.name = 'laptop' RETURN v"
)

QUERY_2 = (
    "MATCH (u:User{id:89}) "
    "CREATE (u)-[:ORDERED]->(:New_Product{id:0})"
)

QUERY_3 = (
    "MATCH (p:New_Product{id:0}) "
    "SET p:Product, p.id=120, p.name='smartphone' "
    "REMOVE p:New_Product"
)

QUERY_4 = "MATCH (p:Product{id:120}) DETACH DELETE p"

QUERY_5 = "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) RETURN p, v"


def figure1_graph() -> GraphStore:
    """The solid-line graph of Figure 1.

    Nodes: vendor v1, products p1-p3, users u1-u2.  Note that p1 and p2
    deliberately share id 125 (the dirty-data premise of Example 2).
    """
    store = GraphStore()
    v1 = store.create_node(("Vendor",), {"id": 60, "name": "cStore"})
    p1 = store.create_node(("Product",), {"id": 125, "name": "laptop"})
    p2 = store.create_node(("Product",), {"id": 125, "name": "notebook"})
    p3 = store.create_node(("Product",), {"id": 85, "name": "tablet"})
    u1 = store.create_node(("User",), {"id": 89, "name": "Bob"})
    u2 = store.create_node(("User",), {"id": 99, "name": "Jane"})
    store.create_relationship("OFFERS", v1, p1)
    store.create_relationship("OFFERS", v1, p2)
    store.create_relationship("ORDERED", u1, p1)
    store.create_relationship("ORDERED", u1, p3)
    store.create_relationship("ORDERED", u2, p2)
    store.commit_to(0)
    return store


#: Shape of the Figure 1 solid-line graph.
FIGURE_1_EXPECTED = (6, 5)

# ---------------------------------------------------------------------------
# Examples 1 and 2 (SET)
# ---------------------------------------------------------------------------

EXAMPLE_1_SWAP = (
    "MATCH (p1:Product{name:'laptop'}), (p2:Product{name:'tablet'}) "
    "SET p1.id = p2.id, p2.id = p1.id"
)

EXAMPLE_1_SEQUENTIAL = (
    "MATCH (p1:Product{name:'laptop'}), (p2:Product{name:'tablet'}) "
    "SET p1.id = p2.id SET p2.id = p1.id"
)

EXAMPLE_2_COPY_NAME = (
    "MATCH (p1:Product{id:85}), (p2:Product{id:125}) "
    "SET p1.name = p2.name"
)

# ---------------------------------------------------------------------------
# Section 4.2 (DELETE anomaly)
# ---------------------------------------------------------------------------

SECTION_4_2_STATEMENT = (
    "MATCH (user)-[order:ORDERED]->(product) "
    "DELETE user "
    "SET user.id = 999 "
    "DELETE order "
    "RETURN user"
)


def section_4_2_graph() -> GraphStore:
    """One user ordering one product."""
    store = GraphStore()
    user = store.create_node(("User",), {"id": 89, "name": "Bob"})
    product = store.create_node(("Product",), {"id": 125, "name": "laptop"})
    store.create_relationship("ORDERED", user, product)
    store.commit_to(0)
    return store


# ---------------------------------------------------------------------------
# Example 3 / Figure 6 (MERGE nondeterminism)
# ---------------------------------------------------------------------------

EXAMPLE_3_MERGE = "MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)"

EXAMPLE_3_MERGE_ALL = (
    "MERGE ALL (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)"
)

EXAMPLE_3_MERGE_SAME = (
    "MERGE SAME (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)"
)


def example3_graph() -> GraphStore:
    """Five relationship-less nodes: u1, u2, p, v1, v2."""
    store = GraphStore()
    for name, label in (
        ("u1", "User"),
        ("u2", "User"),
        ("p", "Product"),
        ("v1", "Vendor"),
        ("v2", "Vendor"),
    ):
        store.create_node((label,), {"name": name})
    store.commit_to(0)
    return store


def example3_table(store: GraphStore) -> DrivingTable:
    """The three-row user/product/vendor table of Example 3."""
    by_name = {
        node.get("name"): node for node in store.nodes()
    }
    return DrivingTable(
        ("user", "product", "vendor"),
        [
            {"user": by_name["u1"], "product": by_name["p"], "vendor": by_name["v1"]},
            {"user": by_name["u2"], "product": by_name["p"], "vendor": by_name["v2"]},
            {"user": by_name["u1"], "product": by_name["p"], "vendor": by_name["v2"]},
        ],
    )


#: Figure 6a: all three instances created (6 relationships).
FIGURE_6A_EXPECTED = (5, 6)
#: Figure 6b: the third row's path matched after the first two (4 rels).
FIGURE_6B_EXPECTED = (5, 4)

# ---------------------------------------------------------------------------
# Example 5 / Figure 7 (MERGE variants, duplicates and nulls)
# ---------------------------------------------------------------------------

EXAMPLE_5_PATTERN = "(:User{id:cid})-[:ORDERED]->(:Product{id:pid})"

EXAMPLE_5_MERGE_ALL = "MERGE ALL " + EXAMPLE_5_PATTERN
EXAMPLE_5_MERGE_SAME = "MERGE SAME " + EXAMPLE_5_PATTERN


def example5_table() -> DrivingTable:
    """The six-row cid/pid/date driving table of Example 5."""
    return DrivingTable(
        ("cid", "pid", "date"),
        [
            {"cid": 98, "pid": 125, "date": "2018-06-23"},
            {"cid": 98, "pid": 125, "date": "2018-07-06"},
            {"cid": 98, "pid": None, "date": None},
            {"cid": 98, "pid": None, "date": None},
            {"cid": 99, "pid": 125, "date": "2018-03-11"},
            {"cid": 99, "pid": None, "date": None},
        ],
    )


#: Figure 7a (Atomic): twelve nodes, six relationships.
FIGURE_7A_EXPECTED = (12, 6)
#: Figure 7b (Grouping): eight nodes, four relationships.
FIGURE_7B_EXPECTED = (8, 4)
#: Figure 7c (Weak/Collapse/Strong): four nodes, four relationships.
FIGURE_7C_EXPECTED = (4, 4)

# ---------------------------------------------------------------------------
# Example 6 / Figure 8 (Weak Collapse vs Collapse)
# ---------------------------------------------------------------------------

EXAMPLE_6_PATTERN = (
    "(:User{id:bid})-[:ORDERED]->(:Product{id:pid})<-[:OFFERS]-(:User{id:sid})"
)


def example6_table() -> DrivingTable:
    """The two-row bid/pid/sid table of Example 6."""
    return DrivingTable(
        ("bid", "pid", "sid"),
        [
            {"bid": 98, "pid": 125, "sid": 97},
            {"bid": 99, "pid": 85, "sid": 98},
        ],
    )


#: Figure 8a (Atomic/Grouping/Weak): six nodes, four relationships.
FIGURE_8A_EXPECTED = (6, 4)
#: Figure 8b (Collapse/Strong): the two 98-users combine; five nodes.
FIGURE_8B_EXPECTED = (5, 4)

# ---------------------------------------------------------------------------
# Example 7 / Figure 9 (Collapse vs Strong Collapse)
# ---------------------------------------------------------------------------

EXAMPLE_7_PATTERN = (
    "(a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)-[:BOUGHT]->(tgt)"
)


def example7_graph_and_table() -> tuple[GraphStore, DrivingTable]:
    """Four product nodes plus the single click-trail row of Example 7."""
    store = GraphStore()
    products = {
        name: store.node(store.create_node(("Product",), {"name": name}))
        for name in ("p1", "p2", "p3", "p4")
    }
    store.commit_to(0)
    table = DrivingTable(
        ("a", "b", "c", "d", "e", "tgt"),
        [
            {
                "a": products["p1"],
                "b": products["p2"],
                "c": products["p3"],
                "d": products["p1"],
                "e": products["p2"],
                "tgt": products["p4"],
            }
        ],
    )
    return store, table


#: Figure 9a (everything but Strong): 4 :TO + 1 :BOUGHT relationships.
FIGURE_9A_EXPECTED = (4, 5)
#: Figure 9b (Strong Collapse): the duplicated p1->p2 :TO edge collapses.
FIGURE_9B_EXPECTED = (4, 4)
