"""E2 -- Example 1: the SET id swap under both dialects.

Shape checks: the legacy dialect loses the swap (both ids equal), the
revised dialect performs it.  Timings compare the per-record legacy SET
with the collect-then-apply atomic SET.
"""

from repro import Dialect, Graph
from repro.paper import EXAMPLE_1_SWAP


def _fixture(dialect):
    graph = Graph(dialect)
    graph.run("CREATE (:Product {name:'laptop', id: 1})")
    graph.run("CREATE (:Product {name:'tablet', id: 2})")
    return graph


def _ids(graph):
    result = graph.run("MATCH (p:Product) RETURN p.name AS n, p.id AS i")
    return {record["n"]: record["i"] for record in result}


def test_legacy_swap_is_lost(benchmark):
    def run():
        graph = _fixture(Dialect.CYPHER9)
        graph.run(EXAMPLE_1_SWAP)
        return graph

    graph = benchmark(run)
    assert _ids(graph) == {"laptop": 2, "tablet": 2}


def test_revised_swap_succeeds(benchmark):
    def run():
        graph = _fixture(Dialect.REVISED)
        graph.run(EXAMPLE_1_SWAP)
        return graph

    graph = benchmark(run)
    assert _ids(graph) == {"laptop": 2, "tablet": 1}


def test_bulk_swap_legacy(benchmark):
    """Pairwise swaps over 200 nodes, legacy semantics (all lost)."""

    def run():
        graph = Graph(Dialect.CYPHER9)
        graph.run(
            "UNWIND range(0, 99) AS i "
            "CREATE (:L {k: i, v: i}), (:R {k: i, v: i + 1000})"
        )
        graph.run(
            "MATCH (l:L), (r:R {k: l.k}) SET l.v = r.v, r.v = l.v"
        )
        return graph

    graph = benchmark(run)
    sample = graph.run(
        "MATCH (l:L {k: 0}), (r:R {k: 0}) RETURN l.v AS l, r.v AS r"
    ).single()
    assert sample == {"l": 1000, "r": 1000}  # swap lost everywhere


def test_bulk_swap_revised(benchmark):
    """Pairwise swaps over 200 nodes, atomic semantics (all succeed)."""

    def run():
        graph = Graph(Dialect.REVISED)
        graph.run(
            "UNWIND range(0, 99) AS i "
            "CREATE (:L {k: i, v: i}), (:R {k: i, v: i + 1000})"
        )
        graph.run(
            "MATCH (l:L), (r:R {k: l.k}) SET l.v = r.v, r.v = l.v"
        )
        return graph

    graph = benchmark(run)
    sample = graph.run(
        "MATCH (l:L {k: 0}), (r:R {k: 0}) RETURN l.v AS l, r.v AS r"
    ).single()
    assert sample == {"l": 1000, "r": 0}
