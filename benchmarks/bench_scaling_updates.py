"""P3 -- update-clause scaling: atomic vs legacy semantics (added).

Measures the cost the revision adds: the atomic SET's collect-then-apply
pass vs legacy in-place writes; strict DELETE validation; and the
undo-journal ablation from DESIGN.md decision 2 (journaled statement +
rollback vs the copy-the-graph alternative).
"""

import pytest

from repro import Dialect, Graph
from repro.workloads.generators import MarketplaceConfig, marketplace_graph

SIZES = [500, 2000]


def _graph(dialect, products):
    store = marketplace_graph(
        MarketplaceConfig(users=10, vendors=2, products=products, orders=0)
    )
    return Graph(dialect, store=store)


@pytest.mark.parametrize("products", SIZES)
def test_set_legacy(benchmark, products):
    def run():
        graph = _graph(Dialect.CYPHER9, products)
        graph.run("MATCH (p:Product) SET p.price = p.price + 1")
        return graph

    graph = benchmark(run)
    assert graph.node_count() == products + 12


@pytest.mark.parametrize("products", SIZES)
def test_set_revised_atomic(benchmark, products):
    def run():
        graph = _graph(Dialect.REVISED, products)
        graph.run("MATCH (p:Product) SET p.price = p.price + 1")
        return graph

    graph = benchmark(run)
    assert graph.node_count() == products + 12


@pytest.mark.parametrize("products", SIZES)
def test_delete_revised_strict(benchmark, products):
    def run():
        graph = _graph(Dialect.REVISED, products)
        graph.run("MATCH (p:Product) DETACH DELETE p")
        return graph

    graph = benchmark(run)
    assert graph.node_count() == 12


def test_rollback_cost(benchmark):
    """DESIGN.md decision 2: journaled rollback of a large statement."""
    from repro.errors import CypherError

    def run():
        graph = Graph(Dialect.REVISED)
        graph.run("UNWIND range(0, 999) AS i CREATE (:N {v: i})")
        try:
            # 1000 more creates, then a failure: all rolled back.
            graph.run(
                "UNWIND range(0, 999) AS i "
                "CREATE (:M {v: i}) "
                "WITH i WHERE i = 999 "
                "MATCH (n:N) RETURN n.v / 0 AS boom"
            )
        except CypherError:
            pass
        return graph

    graph = benchmark(run)
    assert graph.node_count() == 1000  # the :M nodes are gone


def test_copy_graph_alternative(benchmark):
    """The ablation baseline: snapshotting the whole graph instead."""

    def run():
        graph = Graph(Dialect.REVISED)
        graph.run("UNWIND range(0, 999) AS i CREATE (:N {v: i})")
        backup = graph.store.copy()  # copy-the-graph "transaction"
        graph.run("UNWIND range(0, 999) AS i CREATE (:M {v: i})")
        return backup

    backup = benchmark(run)
    assert backup.node_count() == 1000


def test_create_throughput(benchmark):
    def run():
        graph = Graph(Dialect.REVISED)
        graph.run(
            "UNWIND range(0, 1999) AS i "
            "CREATE (:A {v: i})-[:T {w: i}]->(:B {v: i})"
        )
        return graph

    graph = benchmark(run)
    assert graph.relationship_count() == 2000
