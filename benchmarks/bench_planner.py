"""P5 -- planner ablation (DESIGN.md decision; added study).

Measures the greedy endpoint planner on asymmetric patterns: a scan
from the selective end should beat a scan from the unselective end by
roughly the selectivity ratio, and planning must never change results.
"""

import pytest

from repro import Dialect, Graph
from repro.workloads.generators import MarketplaceConfig, marketplace_graph


@pytest.fixture(scope="module")
def stores():
    store = marketplace_graph(
        MarketplaceConfig(
            users=2000, vendors=5, products=50, orders=4000,
            offers_per_product=1,
        )
    )
    store.create_index("Product", "id")
    return store


#: Anchored at the wrong (2000-user) end when read left to right.
ASYMMETRIC = (
    "MATCH (u:User)-[:ORDERED]->(p:Product {id: 7}) "
    "RETURN count(u) AS c"
)


def test_asymmetric_query_unplanned(benchmark, stores):
    graph = Graph(Dialect.REVISED, store=stores)

    result = benchmark(graph.run, ASYMMETRIC)
    assert result.values("c")[0] > 0


def test_asymmetric_query_planned(benchmark, stores):
    graph = Graph(Dialect.REVISED, use_planner=True, store=stores)

    result = benchmark(graph.run, ASYMMETRIC)
    assert result.values("c")[0] > 0


def test_planned_equals_unplanned(stores):
    """Non-timing: planning never changes the bag of results."""
    queries = [
        ASYMMETRIC,
        "MATCH (u:User)-[:ORDERED]->(p:Product) "
        "RETURN p.id AS pid, count(*) AS c ORDER BY pid",
        "MATCH (v:Vendor)-[:OFFERS]->(p:Product {id: 3}) RETURN v.id AS v",
        "MATCH (a:User), (p:Product {id: 1}) "
        "RETURN count(*) AS pairs",
    ]
    plain = Graph(Dialect.REVISED, store=stores)
    planned = Graph(Dialect.REVISED, use_planner=True, store=stores)
    for query in queries:
        assert plain.run(query).table == planned.run(query).table


def test_planner_reports_hits_saved(stores):
    """Non-timing: the planner's win is auditable in db-hits.

    Anchoring the asymmetric match at the indexed Product end must
    touch fewer entities than scanning 2000 users -- same results,
    fewer hits, so the perf trajectory captures work done rather than
    wall-time noise.
    """
    plain = Graph(Dialect.REVISED, store=stores)
    planned = Graph(Dialect.REVISED, use_planner=True, store=stores)
    p_plain = plain.profile(ASYMMETRIC)
    p_planned = planned.profile(ASYMMETRIC)
    assert p_planned.result.records == p_plain.result.records
    saved = p_plain.total_db_hits - p_planned.total_db_hits
    assert saved > 0, (
        f"planner saved no hits: planned {p_planned.hits.compact()} vs "
        f"unplanned {p_plain.hits.compact()}"
    )
    assert p_planned.hits.index_lookups >= 1


def test_cartesian_reorder(benchmark, stores):
    """Cheap path first: (p:Product {id:1}), then the users."""
    graph = Graph(Dialect.REVISED, use_planner=True, store=stores)
    query = (
        "MATCH (u:User), (p:Product {id: 1}) "
        "WHERE u.id < 10 RETURN count(*) AS pairs"
    )

    result = benchmark(graph.run, query)
    assert result.values("pairs") == [10]
