"""E6 -- Example 5 / Figure 7: the five MERGE semantics on nulls/dupes.

Shape checks (paper, Figure 7): Atomic -> 12 nodes / 6 rels;
Grouping -> 8 / 4; Weak Collapse, Collapse, Strong Collapse -> 4 / 4.
"""

import pytest

from repro import GraphStore, MergeSemantics
from repro.paper import (
    EXAMPLE_5_PATTERN,
    FIGURE_7A_EXPECTED,
    FIGURE_7B_EXPECTED,
    FIGURE_7C_EXPECTED,
    example5_table,
)

from conftest import merge_pattern, run_variant

EXPECTED = {
    MergeSemantics.ATOMIC: FIGURE_7A_EXPECTED,
    MergeSemantics.GROUPING: FIGURE_7B_EXPECTED,
    MergeSemantics.WEAK_COLLAPSE: FIGURE_7C_EXPECTED,
    MergeSemantics.COLLAPSE: FIGURE_7C_EXPECTED,
    MergeSemantics.STRONG_COLLAPSE: FIGURE_7C_EXPECTED,
}


@pytest.mark.parametrize("semantics", list(MergeSemantics), ids=lambda s: s.value)
def test_example5_variant(benchmark, semantics):
    pattern = merge_pattern(EXAMPLE_5_PATTERN)
    table = example5_table()

    graph = benchmark(run_variant, GraphStore, pattern, table, semantics)
    snapshot = graph.snapshot()
    assert (snapshot.order(), snapshot.size()) == EXPECTED[semantics]


def test_example5_statement_merge_all(benchmark):
    from repro import Dialect, Graph
    from repro.paper import EXAMPLE_5_MERGE_ALL

    def run():
        graph = Graph(Dialect.REVISED)
        graph.run(EXAMPLE_5_MERGE_ALL, table=example5_table())
        return graph

    graph = benchmark(run)
    snapshot = graph.snapshot()
    assert (snapshot.order(), snapshot.size()) == FIGURE_7A_EXPECTED


def test_example5_statement_merge_same(benchmark):
    from repro import Dialect, Graph
    from repro.paper import EXAMPLE_5_MERGE_SAME

    def run():
        graph = Graph(Dialect.REVISED)
        graph.run(EXAMPLE_5_MERGE_SAME, table=example5_table())
        return graph

    graph = benchmark(run)
    snapshot = graph.snapshot()
    assert (snapshot.order(), snapshot.size()) == FIGURE_7C_EXPECTED
