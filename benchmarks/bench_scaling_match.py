"""P2 -- pattern-matcher scaling (added; the paper has no perf study).

Measures the matcher over synthetic graphs: indexed vs scanned point
lookups, two-hop joins, variable-length trails, and the trail vs
homomorphism regimes.
"""

import pytest

from repro import Dialect, Graph, MatchMode
from repro.workloads.generators import (
    MarketplaceConfig,
    chain_graph,
    marketplace_graph,
    social_graph,
)


@pytest.fixture(scope="module")
def market():
    store = marketplace_graph(
        MarketplaceConfig(
            users=500, vendors=20, products=200, orders=2000,
            offers_per_product=2,
        )
    )
    return Graph(Dialect.REVISED, store=store)


def test_point_lookup_scan(benchmark, market):
    result = benchmark(
        market.run, "MATCH (u:User {id: 250}) RETURN u.name AS n"
    )
    assert result.values("n") == ["user-250"]


def test_point_lookup_indexed(benchmark, market):
    market.create_index("User", "id")

    result = benchmark(
        market.run, "MATCH (u:User {id: 250}) RETURN u.name AS n"
    )
    assert result.values("n") == ["user-250"]


def test_two_hop_join(benchmark, market):
    query = (
        "MATCH (u:User)-[:ORDERED]->(p:Product)<-[:OFFERS]-(v:Vendor) "
        "RETURN count(*) AS c"
    )

    result = benchmark(market.run, query)
    assert result.values("c")[0] > 0


def test_aggregation_over_matches(benchmark, market):
    query = (
        "MATCH (u:User)-[:ORDERED]->(p:Product) "
        "RETURN p.id AS pid, count(u) AS buyers ORDER BY buyers DESC LIMIT 5"
    )

    result = benchmark(market.run, query)
    assert len(result) == 5


def test_var_length_chain(benchmark):
    graph = Graph(Dialect.REVISED, store=chain_graph(300))
    query = "MATCH (a:Hop {id: 0})-[:NEXT*1..50]->(b) RETURN count(b) AS c"

    result = benchmark(graph.run, query)
    assert result.values("c") == [50]


def test_var_length_unbounded_trail(benchmark):
    # Trails on a cycle stay finite without an upper bound.
    graph = Graph(Dialect.REVISED)
    graph.run(
        "CREATE (a:C {i: 0})-[:N]->(b:C {i: 1})-[:N]->(c:C {i: 2})-[:N]->(a)"
    )
    query = "MATCH (s:C {i: 0})-[:N*]->(t) RETURN count(t) AS c"

    result = benchmark(graph.run, query)
    assert result.values("c") == [3]


def test_triangle_count_social(benchmark):
    graph = Graph(Dialect.REVISED, store=social_graph(60, 4))
    query = (
        "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person)"
        "-[:KNOWS]->(a) RETURN count(*) AS triangles"
    )

    result = benchmark(graph.run, query)
    assert result.values("triangles")[0] >= 0


def test_homomorphism_vs_trail_two_hop(benchmark):
    store = social_graph(80, 3)
    hom = Graph(Dialect.REVISED, match_mode=MatchMode.HOMOMORPHISM, store=store)
    trail = Graph(Dialect.REVISED, store=store)
    query = (
        "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
        "RETURN count(*) AS c"
    )

    hom_count = benchmark(hom.run, query).values("c")[0]
    trail_count = trail.run(query).values("c")[0]
    # Homomorphisms include the back-and-forth walks trails exclude.
    assert hom_count >= trail_count


def test_typed_traversal_mixed_hub(benchmark):
    """Per-type adjacency: find 10 :TAG edges on a 2000-:SPOKE hub."""
    from repro.graph.store import GraphStore

    store = GraphStore()
    hub = store.create_node(("Hub",))
    for index in range(2000):
        store.create_relationship(
            "SPOKE", hub, store.create_node(("Leaf",), {"i": index})
        )
    for index in range(10):
        store.create_relationship(
            "TAG", hub, store.create_node(("Tag",), {"i": index})
        )
    graph = Graph(Dialect.REVISED, store=store)
    query = "MATCH (:Hub)-[:TAG]->(t) RETURN count(t) AS c"

    result = benchmark(graph.run, query)
    assert result.values("c") == [10]
