"""E1 -- Figure 1 and Queries (1)-(5) of the paper.

Regenerates the running example and times each numbered query.  Shape
checks: Query 1 returns exactly cStore; Query 5 creates exactly one
vendor and one OFFERS relationship, after which no product is
unoffered.
"""

from repro import Dialect, Graph
from repro.paper import (
    FIGURE_1_EXPECTED,
    QUERY_1,
    QUERY_2,
    QUERY_3,
    QUERY_4,
    QUERY_5,
    figure1_graph,
)


def test_build_figure1(benchmark):
    store = benchmark(figure1_graph)
    snapshot = store.snapshot()
    assert (snapshot.order(), snapshot.size()) == FIGURE_1_EXPECTED


def test_query1_vendor_lookup(benchmark):
    graph = Graph(Dialect.CYPHER9, store=figure1_graph())

    result = benchmark(graph.run, QUERY_1)
    assert [record["v"].get("name") for record in result] == ["cStore"]


def test_queries_2_to_4_update_cycle(benchmark):
    def cycle():
        graph = Graph(Dialect.CYPHER9, store=figure1_graph())
        graph.run(QUERY_2)
        graph.run(QUERY_3)
        graph.run(QUERY_4)
        return graph

    graph = benchmark(cycle)
    snapshot = graph.snapshot()
    assert (snapshot.order(), snapshot.size()) == FIGURE_1_EXPECTED


def test_query5_legacy_merge(benchmark):
    def query5():
        graph = Graph(Dialect.CYPHER9, store=figure1_graph())
        return graph, graph.run(QUERY_5)

    graph, result = benchmark(query5)
    assert len(result) == 3
    assert result.counters.nodes_created == 1
    unoffered = graph.run(
        "MATCH (p:Product) WHERE NOT (p)<-[:OFFERS]-(:Vendor) "
        "RETURN count(p) AS c"
    )
    assert unoffered.values("c") == [0]
