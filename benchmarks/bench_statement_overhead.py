"""Engine fixed costs: parse cache, scope check, journal bracket.

Micro-benchmarks of the per-statement overhead that every query pays,
independent of data size.  Useful when comparing engine timings in the
other files: subtract these floors to see the algorithmic part.
"""

from repro import Dialect, Graph
from repro.parser import parse


def test_trivial_statement_throughput(benchmark):
    graph = Graph(Dialect.REVISED)

    result = benchmark(graph.run, "RETURN 1 AS x")
    assert result.records == [{"x": 1}]


def test_parse_cold(benchmark):
    source = (
        "MATCH (u:User {id: 1})-[:ORDERED]->(p:Product) "
        "WHERE p.price > 10 RETURN u, collect(p.name) AS names"
    )

    statement = benchmark(parse, source, Dialect.REVISED)
    assert statement.branches()


def test_parse_cached(benchmark):
    graph = Graph(Dialect.REVISED)
    source = (
        "MATCH (u:User {id: 1})-[:ORDERED]->(p:Product) "
        "WHERE p.price > 10 RETURN u, collect(p.name) AS names"
    )
    graph.engine.parse(source)  # warm the cache

    statement = benchmark(graph.engine.parse, source)
    assert statement.branches()


def test_single_create_statement(benchmark):
    graph = Graph(Dialect.REVISED)

    def run():
        return graph.run("CREATE (:N {v: 1})")

    result = benchmark(run)
    assert result.counters.nodes_created == 1


def test_scope_check_overhead_large_statement(benchmark):
    from repro.runtime.scoping import check_statement

    source = " ".join(
        f"MATCH (n{i}:L{i} {{k: {i}}})" for i in range(30)
    ) + " RETURN " + ", ".join(f"n{i}" for i in range(30))
    statement = parse(source, Dialect.REVISED)

    benchmark(check_statement, statement)
