"""E8 -- Example 7 / Figure 9: Strong Collapse and trail re-matching.

Shape checks (paper, Figure 9): every variant but Strong Collapse keeps
the duplicated p1->p2 :TO edge (5 relationships); Strong Collapse
merges it (4).  After Strong Collapse the inserted pattern cannot be
re-matched under trail semantics but can under homomorphism matching.
"""

import pytest

from repro import Dialect, Graph, MatchMode, MergeSemantics
from repro.core.merge import merge
from repro.paper import (
    EXAMPLE_7_PATTERN,
    FIGURE_9A_EXPECTED,
    FIGURE_9B_EXPECTED,
    example7_graph_and_table,
)
from repro.runtime.context import EvalContext

from conftest import merge_pattern

EXPECTED = {
    MergeSemantics.ATOMIC: FIGURE_9A_EXPECTED,
    MergeSemantics.GROUPING: FIGURE_9A_EXPECTED,
    MergeSemantics.WEAK_COLLAPSE: FIGURE_9A_EXPECTED,
    MergeSemantics.COLLAPSE: FIGURE_9A_EXPECTED,
    MergeSemantics.STRONG_COLLAPSE: FIGURE_9B_EXPECTED,
}


def _run(semantics):
    store, table = example7_graph_and_table()
    graph = Graph(Dialect.REVISED, store=store)
    ctx = EvalContext(store=graph.store)
    merge(ctx, merge_pattern(EXAMPLE_7_PATTERN), table, semantics)
    return graph, table


@pytest.mark.parametrize("semantics", list(MergeSemantics), ids=lambda s: s.value)
def test_example7_variant(benchmark, semantics):
    graph, __ = benchmark(_run, semantics)
    snapshot = graph.snapshot()
    assert (snapshot.order(), snapshot.size()) == EXPECTED[semantics]


def test_trail_rematch_fails_after_strong_collapse(benchmark):
    graph, table = _run(MergeSemantics.STRONG_COLLAPSE)
    query = "MATCH " + EXAMPLE_7_PATTERN + " RETURN count(*) AS c"

    result = benchmark(graph.run, query, table=table)
    assert result.values("c") == [0]


def test_homomorphism_rematch_succeeds(benchmark):
    graph, table = _run(MergeSemantics.STRONG_COLLAPSE)
    hom = Graph(
        Dialect.REVISED, match_mode=MatchMode.HOMOMORPHISM, store=graph.store
    )
    query = "MATCH " + EXAMPLE_7_PATTERN + " RETURN count(*) AS c"

    result = benchmark(hom.run, query, table=table)
    assert result.values("c")[0] >= 1
