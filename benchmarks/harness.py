"""Experiment harness: regenerate every paper artifact and print the
paper-vs-measured comparison recorded in EXPERIMENTS.md.

Run with:  python benchmarks/harness.py

Unlike the pytest-benchmark files (which time each piece), this script
executes each experiment once and prints a compact report: experiment
id, what the paper says, and what this implementation produced.  It
also writes ``benchmarks/BENCH_harness.json``: one entry per recorded
row with ``elapsed_ms`` and ``db_hits`` fields (the db-hit taxonomy of
:mod:`repro.graph.counters`), so the perf trajectory captures work
done, not just wall-time.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro import Dialect, Graph, HitCounters, MergeSemantics, PropertyConflictError
from repro.core.merge import merge
from repro.errors import DanglingRelationshipError, UpdateError
from repro.graph.comparison import fingerprint
from repro.parser import parse
from repro.paper import (
    EXAMPLE_1_SWAP,
    EXAMPLE_2_COPY_NAME,
    EXAMPLE_3_MERGE,
    EXAMPLE_3_MERGE_ALL,
    EXAMPLE_3_MERGE_SAME,
    EXAMPLE_5_PATTERN,
    EXAMPLE_6_PATTERN,
    EXAMPLE_7_PATTERN,
    QUERY_1,
    QUERY_2,
    QUERY_3,
    QUERY_4,
    QUERY_5,
    SECTION_4_2_STATEMENT,
    example3_graph,
    example3_table,
    example5_table,
    example6_table,
    example7_graph_and_table,
    figure1_graph,
    section_4_2_graph,
)
from repro.runtime.context import EvalContext

ROWS: list[dict] = []

BENCH_JSON = Path(__file__).with_name("BENCH_harness.json")


def record(
    experiment: str,
    artifact: str,
    paper: str,
    measured: str,
    *,
    elapsed_ms: float | None = None,
    db_hits: dict | None = None,
) -> None:
    ROWS.append(
        {
            "experiment": experiment,
            "artifact": artifact,
            "paper": paper,
            "measured": measured,
            "elapsed_ms": (
                round(elapsed_ms, 3) if elapsed_ms is not None else None
            ),
            "db_hits": db_hits,
        }
    )
    print(f"  [{experiment}] {artifact}: {measured}")


def measured_call(store, thunk):
    """Run *thunk* with hit counters installed on *store*.

    Returns ``(value, elapsed_ms, DbHits)`` -- the instrumentation the
    JSON report attaches to each entry.
    """
    counters = HitCounters()
    store.install_counters(counters)
    started = time.perf_counter()
    try:
        value = thunk()
    finally:
        store.reset_counters()
    elapsed = (time.perf_counter() - started) * 1000
    return value, elapsed, counters.snapshot()


def pattern_of(source: str):
    statement = parse(
        "MERGE ALL " + source, Dialect.REVISED, extended_merge=True
    )
    return statement.branches()[0].clauses[0].pattern


def shape(graph: Graph) -> str:
    snapshot = graph.snapshot()
    return f"{snapshot.order()} nodes / {snapshot.size()} rels"


def e1_running_example() -> None:
    print("\nE1  Figure 1 + Queries (1)-(5)")
    graph = Graph(Dialect.CYPHER9, store=figure1_graph())
    record("E1", "Figure 1", "6 nodes / 5 rels", shape(graph))
    vendors = [r["v"].get("name") for r in graph.run(QUERY_1)]
    record("E1", "Query (1)", "returns cStore once", f"returns {vendors}")
    graph.run(QUERY_2)
    graph.run(QUERY_3)
    graph.run(QUERY_4)
    record(
        "E1",
        "Queries (2)-(4)",
        "insert p4, relabel, detach delete -> back to Figure 1",
        shape(graph),
    )
    result = graph.run(QUERY_5)
    record(
        "E1",
        "Query (5)",
        "3 rows; creates v2 + 1 OFFERS",
        f"{len(result)} rows; +{result.counters.nodes_created} node, "
        f"+{result.counters.relationships_created} rel",
    )


def e2_set_swap() -> None:
    print("\nE2  Example 1 (SET swap)")
    outcomes = {}
    for dialect in (Dialect.CYPHER9, Dialect.REVISED):
        graph = Graph(dialect)
        graph.run("CREATE (:Product {name:'laptop', id: 1})")
        graph.run("CREATE (:Product {name:'tablet', id: 2})")
        graph.run(EXAMPLE_1_SWAP)
        rows = graph.run(
            "MATCH (p:Product) RETURN p.name AS n, p.id AS i"
        )
        outcomes[dialect] = {r["n"]: r["i"] for r in rows}
    record(
        "E2",
        "legacy",
        "swap lost: both ids become 2",
        str(outcomes[Dialect.CYPHER9]),
    )
    record(
        "E2",
        "revised",
        "swap succeeds: ids exchanged",
        str(outcomes[Dialect.REVISED]),
    )


def e3_set_conflict() -> None:
    print("\nE3  Example 2 (ambiguous SET)")
    legacy = Graph(Dialect.CYPHER9, store=figure1_graph())
    legacy.run(EXAMPLE_2_COPY_NAME)
    name = legacy.run(
        "MATCH (p:Product {id: 85}) RETURN p.name AS n"
    ).values("n")[0]
    record(
        "E3", "legacy", "silently writes laptop or notebook", f"wrote {name!r}"
    )
    revised = Graph(Dialect.REVISED, store=figure1_graph())
    try:
        revised.run(EXAMPLE_2_COPY_NAME)
        measured = "NO ERROR (bug!)"
    except PropertyConflictError:
        measured = "PropertyConflictError, graph unchanged"
    record("E3", "revised", "aborts with an error", measured)


def e4_delete_anomaly() -> None:
    print("\nE4  Section 4.2 (DELETE anomaly)")
    legacy = Graph(Dialect.CYPHER9, store=section_4_2_graph())
    zombie = legacy.run(SECTION_4_2_STATEMENT).records[0]["user"]
    record(
        "E4",
        "legacy",
        "goes through; returns an empty node",
        f"labels={set(zombie.labels) or '{}'} props={dict(zombie.properties)}",
    )
    revised = Graph(Dialect.REVISED, store=section_4_2_graph())
    try:
        revised.run(SECTION_4_2_STATEMENT)
        measured = "NO ERROR (bug!)"
    except DanglingRelationshipError:
        measured = "DanglingRelationshipError, statement rolled back"
    record("E4", "revised", "dangling DELETE is an error", measured)


def e5_merge_nondeterminism() -> None:
    print("\nE5  Example 3 / Figure 6 (legacy MERGE) + E10 determinism")
    results = {}
    for label, reorder in (("top-down", False), ("bottom-up", True)):
        store = example3_graph()
        graph = Graph(Dialect.CYPHER9, store=store)
        table = example3_table(store)
        graph.run(EXAMPLE_3_MERGE, table=table.reversed() if reorder else table)
        results[label] = graph.relationship_count()
    record(
        "E5",
        "legacy top-down",
        "Figure 6b: 4 rels",
        f"{results['top-down']} rels",
    )
    record(
        "E5",
        "legacy bottom-up",
        "Figure 6a: 6 rels",
        f"{results['bottom-up']} rels",
    )
    for statement, expected in (
        (EXAMPLE_3_MERGE_ALL, 6),
        (EXAMPLE_3_MERGE_SAME, 4),
    ):
        prints = set()
        counts = set()
        for seed in range(10):
            store = example3_graph()
            graph = Graph(Dialect.REVISED, store=store)
            graph.run(statement, table=example3_table(store).shuffled(seed))
            prints.add(fingerprint(graph.snapshot()))
            counts.add(graph.relationship_count())
        keyword = " ".join(statement.split()[:2])
        record(
            "E10",
            keyword,
            f"always {expected} rels, order-insensitive",
            f"{sorted(counts)} rels over 10 shuffles, "
            f"{len(prints)} distinct graph(s)",
        )


def _variant_sweep(experiment, pattern_source, make_state, expected):
    pattern = pattern_of(pattern_source)
    for semantics in MergeSemantics:
        store, table = make_state()
        graph = Graph(Dialect.REVISED, store=store)
        ctx = EvalContext(store=graph.store)
        merge(ctx, pattern, table, semantics)
        record(
            experiment,
            semantics.value,
            expected[semantics],
            shape(graph),
        )


def e6_figure7() -> None:
    print("\nE6  Example 5 / Figure 7 (five MERGE semantics)")
    from repro.graph.store import GraphStore

    _variant_sweep(
        "E6",
        EXAMPLE_5_PATTERN,
        lambda: (GraphStore(), example5_table()),
        {
            MergeSemantics.ATOMIC: "Fig 7a: 12 nodes / 6 rels",
            MergeSemantics.GROUPING: "Fig 7b: 8 nodes / 4 rels",
            MergeSemantics.WEAK_COLLAPSE: "Fig 7c: 4 nodes / 4 rels",
            MergeSemantics.COLLAPSE: "Fig 7c: 4 nodes / 4 rels",
            MergeSemantics.STRONG_COLLAPSE: "Fig 7c: 4 nodes / 4 rels",
        },
    )


def e7_figure8() -> None:
    print("\nE7  Example 6 / Figure 8 (Weak vs Collapse)")
    from repro.graph.store import GraphStore

    _variant_sweep(
        "E7",
        EXAMPLE_6_PATTERN,
        lambda: (GraphStore(), example6_table()),
        {
            MergeSemantics.ATOMIC: "Fig 8a: 6 nodes / 4 rels",
            MergeSemantics.GROUPING: "Fig 8a: 6 nodes / 4 rels",
            MergeSemantics.WEAK_COLLAPSE: "Fig 8a: 6 nodes / 4 rels",
            MergeSemantics.COLLAPSE: "Fig 8b: 5 nodes / 4 rels",
            MergeSemantics.STRONG_COLLAPSE: "Fig 8b: 5 nodes / 4 rels",
        },
    )


def e8_figure9() -> None:
    print("\nE8  Example 7 / Figure 9 (Strong Collapse + re-match)")
    _variant_sweep(
        "E8",
        EXAMPLE_7_PATTERN,
        example7_graph_and_table,
        {
            MergeSemantics.ATOMIC: "Fig 9a: 4 nodes / 5 rels",
            MergeSemantics.GROUPING: "Fig 9a: 4 nodes / 5 rels",
            MergeSemantics.WEAK_COLLAPSE: "Fig 9a: 4 nodes / 5 rels",
            MergeSemantics.COLLAPSE: "Fig 9a: 4 nodes / 5 rels",
            MergeSemantics.STRONG_COLLAPSE: "Fig 9b: 4 nodes / 4 rels",
        },
    )
    from repro import MatchMode

    store, table = example7_graph_and_table()
    graph = Graph(Dialect.REVISED, store=store)
    graph.run("MERGE SAME " + EXAMPLE_7_PATTERN, table=table)
    trail = graph.run(
        "MATCH " + EXAMPLE_7_PATTERN + " RETURN count(*) AS c", table=table
    ).values("c")[0]
    hom = Graph(
        Dialect.REVISED, match_mode=MatchMode.HOMOMORPHISM, store=graph.store
    ).run(
        "MATCH " + EXAMPLE_7_PATTERN + " RETURN count(*) AS c", table=table
    ).values("c")[0]
    record(
        "E8",
        "re-match after MERGE SAME",
        "trail: no match; homomorphism: matches",
        f"trail: {trail}; homomorphism: {hom}",
    )


def e9_grammars() -> None:
    print("\nE9  Figures 2-5 vs Figure 10 (grammars)")
    from repro.errors import CypherSyntaxError

    checks = [
        ("MERGE (n:N)", Dialect.CYPHER9, True),
        ("MERGE (n:N)", Dialect.REVISED, False),
        ("MERGE ALL (a:A)-[:T]->(b)", Dialect.REVISED, True),
        ("MERGE ALL (a:A)-[:T]->(b)", Dialect.CYPHER9, False),
        ("MERGE (a)-[:T]-(b)", Dialect.CYPHER9, True),
        ("MERGE SAME (a)-[:T]-(b)", Dialect.REVISED, False),
        ("CREATE (n) MATCH (m) RETURN m", Dialect.REVISED, True),
        ("CREATE (n) MATCH (m) RETURN m", Dialect.CYPHER9, False),
    ]
    agreed = 0
    for source, dialect, should_parse in checks:
        try:
            parse(source, dialect)
            parsed = True
        except CypherSyntaxError:
            parsed = False
        agreed += parsed == should_parse
    record(
        "E9",
        "dialect grammar corpus",
        f"{len(checks)}/{len(checks)} verdicts as per the figures",
        f"{agreed}/{len(checks)} verdicts match",
    )


def p1_scaling_teaser() -> None:
    print("\nP1  MERGE variant scaling teaser (1000 rows, 40% duplicates)")
    from repro.workloads.generators import OrderTableConfig, order_table

    table = order_table(
        OrderTableConfig(rows=1000, duplicate_ratio=0.4, null_ratio=0.1)
    )
    pattern = pattern_of(
        "(:User {id: cid})-[:ORDERED]->(:Product {id: pid})"
    )
    for semantics in MergeSemantics:
        graph = Graph(Dialect.REVISED)
        ctx = EvalContext(store=graph.store)
        _, elapsed, hits = measured_call(
            graph.store,
            lambda: merge(ctx, pattern, table.copy(), semantics),
        )
        record(
            "P1",
            semantics.value,
            "sizes shrink along Atomic > Grouping > ... > Strong",
            f"{shape(graph)} in {elapsed:.1f} ms; "
            f"db hits {hits.compact()}",
            elapsed_ms=elapsed,
            db_hits=hits.to_dict(),
        )


def p2_profile_observability() -> None:
    print("\nP2  PROFILE layer (db-hits; index vs label scan)")

    def build() -> Graph:
        graph = Graph(Dialect.REVISED)
        for i in range(200):
            graph.run("CREATE (:L {k: $i})", {"i": i})
        return graph

    query = "MATCH (n:L {k: 1}) RETURN n"
    scan = build().profile(query)
    indexed_graph = build()
    indexed_graph.create_index("L", "k")
    lookup = indexed_graph.profile(query)
    record(
        "P2",
        "label scan",
        "db-hits grow with the label population",
        f"db hits {scan.hits.compact()}",
        elapsed_ms=scan.time_ms,
        db_hits=scan.hits.to_dict(),
    )
    record(
        "P2",
        "index lookup",
        "db-hits independent of population",
        f"db hits {lookup.hits.compact()}",
        elapsed_ms=lookup.time_ms,
        db_hits=lookup.hits.to_dict(),
    )
    saved = scan.total_db_hits - lookup.total_db_hits
    record(
        "P2",
        "hits saved by index",
        "scan - lookup > 0",
        f"{saved} db hits saved",
    )


def p3_expression_compiler(rows: int = 12000) -> None:
    print(f"\nP3  Expression compiler ({rows} rows; WHERE-filtered MATCH + SET)")
    from repro.runtime import compiler

    statement = (
        "MATCH (n:Item) "
        "WHERE n.v % 2 = 0 AND n.w + 1 < 90 AND n.name STARTS WITH 'item' "
        "SET n.score = n.v * 2 + n.w "
        "RETURN count(n) AS touched"
    )

    def build() -> Graph:
        graph = Graph(Dialect.REVISED)
        for i in range(rows):
            graph.store.create_node(
                ("Item",), {"v": i, "w": i % 97, "name": f"item{i}"}
            )
        return graph

    # Interpreted baseline: every evaluate() walks the AST per row.
    graph = build()
    with compiler.compilation_disabled():
        graph.run(statement)  # warm the statement cache
        _, interpreted_ms, __ = measured_call(
            graph.store, lambda: graph.run(statement)
        )

    # Compiled: the warm-up run pays compilation once, the timed run
    # reuses every closure (the production steady state).
    graph = build()
    compiler.clear_cache()
    warmed = graph.run(statement)
    result, compiled_ms, hits = measured_call(
        graph.store, lambda: graph.run(statement)
    )
    touched = result.single()["touched"]
    assert touched == warmed.single()["touched"]
    speedup = interpreted_ms / compiled_ms if compiled_ms else float("inf")
    record(
        "P3",
        "interpreted baseline",
        "per-row AST walks dominate",
        f"{touched} rows set in {interpreted_ms:.1f} ms",
        elapsed_ms=interpreted_ms,
    )
    record(
        "P3",
        "compiled closures",
        "dispatch paid once per distinct expression",
        f"{touched} rows set in {compiled_ms:.1f} ms; "
        f"db hits {hits.compact()}",
        elapsed_ms=compiled_ms,
        db_hits=hits.to_dict(),
    )
    record(
        "P3",
        "speedup",
        ">= 1.5x compiled vs interpreted",
        f"{speedup:.2f}x",
    )


def p4_selective_match(users: int = 12000) -> None:
    print(
        f"\nP4  Match planner ({users} User nodes; "
        "selective non-leading anchor)"
    )
    from repro.runtime import match_planner

    graph = Graph(Dialect.REVISED, use_planner=True)
    store = graph.store
    products = [
        store.create_node(("Product",), {"id": i}) for i in range(120)
    ]
    for i in range(users):
        user = store.create_node(("User",), {"id": i})
        store.create_relationship("ORDERED", user, products[i % 120])
    graph.create_index("Product", "id")
    # The selective anchor is written *last*: the naive matcher scans
    # every User and expands, the planner starts at the index hit and
    # walks the pattern backwards.
    statement = (
        "MATCH (u:User)-[:ORDERED]->(p:Product {id: 7}) "
        "RETURN count(u) AS c"
    )
    with match_planner.planner_disabled():
        naive_count = graph.run(statement).single()["c"]  # warm caches
        _, naive_ms, naive_hits = measured_call(
            store, lambda: graph.run(statement)
        )
    planned_result, planned_ms, planned_hits = measured_call(
        store, lambda: graph.run(statement)
    )
    assert planned_result.single()["c"] == naive_count
    speedup = naive_ms / planned_ms if planned_ms else float("inf")
    record(
        "P4",
        "naive matcher (planner_disabled)",
        "anchors at (u:User), scans every user",
        f"{naive_count} orders counted in {naive_ms:.1f} ms; "
        f"db hits {naive_hits.compact()}",
        elapsed_ms=naive_ms,
        db_hits=naive_hits.to_dict(),
    )
    record(
        "P4",
        "match planner",
        "anchors at index :Product(id), expands backwards",
        f"{naive_count} orders counted in {planned_ms:.1f} ms; "
        f"db hits {planned_hits.compact()}",
        elapsed_ms=planned_ms,
        db_hits=planned_hits.to_dict(),
    )
    record(
        "P4",
        "speedup",
        ">= 5x planned vs naive",
        f"{speedup:.1f}x "
        f"({naive_hits.total / max(1, planned_hits.total):.0f}x fewer db hits)",
    )


def p5_fuzz_throughput(count: int = 120) -> None:
    print(f"\nP5  Differential fuzzer throughput ({count} seeded cases)")
    from repro.testing.differential import run_case
    from repro.testing.generator import cases

    batch = list(cases(seed=0, count=count))
    started = time.perf_counter()
    results = [run_case(case) for case in batch]
    elapsed = (time.perf_counter() - started) * 1000
    ok = sum(result.ok for result in results)
    errors = sum(
        outcome.status == "error"
        for result in results
        for outcome in result.outcomes
    )
    rate = count / (elapsed / 1000) if elapsed else float("inf")
    record(
        "P5",
        "differential conformance fuzzer",
        "all cases agree across planner/compiler/MERGE surfaces",
        f"{ok}/{count} cases ok ({errors} agreeing error outcomes) "
        f"at {rate:.0f} cases/s",
        elapsed_ms=elapsed,
    )


def p6_durability(statements: int = 1000) -> None:
    print(f"\nP6  WAL durability ({statements} update statements per policy)")
    import tempfile

    from repro.graph.store import GraphStore
    from repro.persistence import PersistenceManager

    def workload(graph: Graph) -> None:
        graph.run("CREATE INDEX ON :D(k)")
        for i in range(statements):
            if i % 5 == 4:
                graph.run(
                    "MATCH (n:D {k: $k}) SET n.v = n.v + 1", {"k": i - 1}
                )
            else:
                graph.run("CREATE (:D {k: $k, v: $v})", {"k": i, "v": i * 2})

    graph = Graph(Dialect.REVISED)
    started = time.perf_counter()
    workload(graph)
    baseline_ms = (time.perf_counter() - started) * 1000
    record(
        "P6",
        "in-memory baseline",
        "no WAL: the statement cost floor",
        f"{statements} statements in {baseline_ms:.1f} ms",
        elapsed_ms=baseline_ms,
    )

    with tempfile.TemporaryDirectory() as tmp:
        for policy in ("off", "batch", "always"):
            directory = Path(tmp) / policy
            graph = Graph(Dialect.REVISED, path=directory, fsync=policy)
            started = time.perf_counter()
            workload(graph)
            elapsed = (time.perf_counter() - started) * 1000
            graph.close()
            overhead = elapsed / baseline_ms if baseline_ms else float("inf")
            expectation = (
                "serialisation only: <= 2x baseline"
                if policy == "off"
                else "adds fsync latency per "
                + ("batch" if policy == "batch" else "record")
            )
            record(
                "P6",
                f"fsync={policy}",
                expectation,
                f"{statements} statements in {elapsed:.1f} ms "
                f"({overhead:.2f}x baseline)",
                elapsed_ms=elapsed,
            )

        store = GraphStore()
        manager = PersistenceManager(Path(tmp) / "off")
        started = time.perf_counter()
        report = manager.recover(store)
        elapsed = time.perf_counter() - started
        manager.close()
        rate = (
            report.records_applied / elapsed if elapsed else float("inf")
        )
        record(
            "P6",
            "recovery",
            "replays the whole log; invariants re-verified",
            f"{report.records_applied} records -> {report.nodes} nodes / "
            f"{report.relationships} rels in {elapsed * 1000:.1f} ms "
            f"({rate:.0f} records/s)",
            elapsed_ms=elapsed * 1000,
        )


def p7_concurrent_service(
    clients: int = 100, statements_per_client: int = 10
) -> None:
    """Throughput/latency of the networked service under load.

    Drives *clients* concurrent keep-alive connections through a
    mixed workload (80% CREATE / 20% MATCH) against four server
    configurations: in-memory, durable ``fsync=off``, durable
    ``fsync=always`` with one fsync per statement, and durable
    ``fsync=always`` with group commit.  Group commit must pull the
    per-statement-fsync overhead down to a small multiple of the
    ``off`` baseline while acknowledging exactly the same guarantee.
    Also verifies snapshot consistency: readers racing a writer's
    open transaction must never observe a half-applied transaction.
    """
    print(
        f"\nP7  networked service ({clients} concurrent clients x "
        f"{statements_per_client} statements)"
    )
    import asyncio
    import tempfile

    from repro.client import AsyncClient
    from repro.server.http import HttpServer
    from repro.server.service import GraphService, ServerConfig

    total = clients * statements_per_client

    def percentile(values: list[float], q: float) -> float:
        if not values:
            return 0.0
        index = min(len(values) - 1, round(q * (len(values) - 1)))
        return values[index]

    async def run_config(
        path, fsync: str, group_commit: bool
    ) -> tuple[float, list[float], dict | None]:
        service = GraphService(
            ServerConfig(
                path=path, fsync=fsync, group_commit=group_commit
            )
        )
        server = HttpServer(service, port=0)
        await server.start()
        latencies: list[float] = []

        async def drive(client_id: int) -> None:
            client = await AsyncClient(
                "127.0.0.1", server.port
            ).connect()
            try:
                for j in range(statements_per_client):
                    key = client_id * statements_per_client + j
                    started = time.perf_counter()
                    if j % 5 == 4:
                        await client.run(
                            "MATCH (n:P7 {k: $k}) RETURN n.v AS v",
                            {"k": key - 1},
                        )
                    else:
                        await client.run(
                            "CREATE (:P7 {k: $k, v: $v})",
                            {"k": key, "v": key * 2},
                        )
                    latencies.append(time.perf_counter() - started)
            finally:
                await client.close()

        started = time.perf_counter()
        await asyncio.gather(*(drive(i) for i in range(clients)))
        elapsed = time.perf_counter() - started
        group_stats = (
            service.committer.stats() if service.committer else None
        )
        await server.close()
        return elapsed, sorted(latencies), group_stats

    async def snapshot_consistency_check() -> tuple[int, int]:
        """Readers race a writer's 2-statement transactions; a
        snapshot-consistent server never shows an odd node count."""
        service = GraphService(ServerConfig())
        server = HttpServer(service, port=0)
        await server.start()
        writer = await AsyncClient("127.0.0.1", server.port).connect()
        reader = await AsyncClient("127.0.0.1", server.port).connect()
        _, payload = await writer.request("POST", "/sessions")
        session_id = payload["session"]
        checks = violations = 0
        done = False

        async def write_loop() -> None:
            nonlocal done
            for _ in range(30):
                await writer.request(
                    "POST", f"/sessions/{session_id}/begin"
                )
                await writer.run("CREATE (:Pair)", session_id=session_id)
                await asyncio.sleep(0)
                await writer.run("CREATE (:Pair)", session_id=session_id)
                await writer.request(
                    "POST", f"/sessions/{session_id}/commit"
                )
            done = True

        async def read_loop() -> None:
            nonlocal checks, violations
            while not done:
                payload = await reader.run(
                    "MATCH (n:Pair) RETURN count(n) AS c"
                )
                count = payload["records"][0][0]
                checks += 1
                if count % 2:
                    violations += 1
                await asyncio.sleep(0)

        await asyncio.gather(write_loop(), read_loop())
        await writer.close()
        await reader.close()
        await server.close()
        return checks, violations

    memory_s, memory_lat, _ = asyncio.run(
        run_config(None, "off", False)
    )
    record(
        "P7",
        f"in-memory service, {clients} clients",
        "the networked cost floor",
        f"{total} statements in {memory_s * 1000:.0f} ms "
        f"({total / memory_s:.0f} stmt/s; p50 "
        f"{percentile(memory_lat, 0.50) * 1000:.2f} / p95 "
        f"{percentile(memory_lat, 0.95) * 1000:.2f} / p99 "
        f"{percentile(memory_lat, 0.99) * 1000:.2f} ms)",
        elapsed_ms=memory_s * 1000,
    )

    with tempfile.TemporaryDirectory() as tmp:
        off_s, off_lat, _ = asyncio.run(
            run_config(Path(tmp) / "off", "off", False)
        )
        record(
            "P7",
            "fsync=off",
            "WAL appends, no fsync: the durable floor",
            f"{total} statements in {off_s * 1000:.0f} ms "
            f"({total / off_s:.0f} stmt/s; p50 "
            f"{percentile(off_lat, 0.50) * 1000:.2f} / p95 "
            f"{percentile(off_lat, 0.95) * 1000:.2f} / p99 "
            f"{percentile(off_lat, 0.99) * 1000:.2f} ms)",
            elapsed_ms=off_s * 1000,
        )

        solo_s, solo_lat, _ = asyncio.run(
            run_config(Path(tmp) / "solo", "always", False)
        )
        solo_x = solo_s / off_s if off_s else float("inf")
        record(
            "P7",
            "fsync=always, per-statement",
            "one fsync per acknowledged write (P6 saw ~13.7x)",
            f"{total} statements in {solo_s * 1000:.0f} ms "
            f"({solo_x:.2f}x the off baseline; p50 "
            f"{percentile(solo_lat, 0.50) * 1000:.2f} / p95 "
            f"{percentile(solo_lat, 0.95) * 1000:.2f} / p99 "
            f"{percentile(solo_lat, 0.99) * 1000:.2f} ms)",
            elapsed_ms=solo_s * 1000,
        )

        group_s, group_lat, group_stats = asyncio.run(
            run_config(Path(tmp) / "group", "always", True)
        )
        group_x = group_s / off_s if off_s else float("inf")
        per_batch = (
            group_stats["synced_waiters"] / group_stats["batches"]
            if group_stats and group_stats["batches"]
            else 0.0
        )
        record(
            "P7",
            "fsync=always, group commit",
            "concurrent writers share one fsync per batch: <= 3x off",
            f"{total} statements in {group_s * 1000:.0f} ms "
            f"({group_x:.2f}x the off baseline, "
            f"{group_stats['batches'] if group_stats else 0} fsyncs, "
            f"{per_batch:.1f} writers/batch, max "
            f"{group_stats['max_batch'] if group_stats else 0}; p50 "
            f"{percentile(group_lat, 0.50) * 1000:.2f} / p95 "
            f"{percentile(group_lat, 0.95) * 1000:.2f} / p99 "
            f"{percentile(group_lat, 0.99) * 1000:.2f} ms)",
            elapsed_ms=group_s * 1000,
        )

    checks, violations = asyncio.run(snapshot_consistency_check())
    record(
        "P7",
        "snapshot-consistent readers",
        "no reader ever sees half of a transaction",
        f"{checks} concurrent reads against an open transaction, "
        f"{violations} saw a torn (odd) state",
    )


def p8_columnar_scaling(
    scales: tuple[int, ...] = (10_000, 100_000, 1_000_000),
    pipeline_nodes: int = 5000,
    memory_sample: int = 20_000,
) -> None:
    print(
        f"\nP8  Columnar store + bulk loader scaling "
        f"(scales {', '.join(str(s) for s in scales)})"
    )
    import sys
    import tempfile

    sys.path.insert(0, str(Path(__file__).parent))
    from memprof import naive_layout_bytes, rss_bytes, store_memory_report

    from repro.bulkload import (
        iter_nodes_csv,
        iter_rels_csv,
        load_store,
        write_synthetic_csv,
    )

    # -- bulk loader vs statement pipeline (same synthetic shape) ------
    graph = Graph(Dialect.REVISED, use_planner=True)
    graph.create_index("Person", "id")
    node_batch = [
        {
            "id": i,
            "name": f"p{i}",
            "admin": i % 10 == 0,
            "next": (i + 1) % pipeline_nodes,
        }
        for i in range(pipeline_nodes)
    ]
    started = time.perf_counter()
    for offset in range(0, pipeline_nodes, 1000):
        graph.run(
            "UNWIND $rows AS row "
            "CREATE (p:Person {id: row.id, name: row.name})",
            rows=node_batch[offset:offset + 1000],
        )
    for offset in range(0, pipeline_nodes, 1000):
        graph.run(
            "UNWIND $rows AS row "
            "MATCH (a:Person {id: row.id}), (b:Person {id: row.next}) "
            "CREATE (a)-[:FOLLOWS]->(b)",
            rows=node_batch[offset:offset + 1000],
        )
    pipeline_seconds = time.perf_counter() - started
    pipeline_rate = (2 * pipeline_nodes) / pipeline_seconds

    with tempfile.TemporaryDirectory() as tmp:
        nodes_path, rels_path = write_synthetic_csv(
            tmp, pipeline_nodes, rels_per_node=1
        )
        started = time.perf_counter()
        small = load_store(
            iter_nodes_csv(nodes_path),
            iter_rels_csv(rels_path),
            indexes=[("Person", "id")],
        )
        bulk_seconds = time.perf_counter() - started
    bulk_rate = (
        small.node_count() + small.relationship_count()
    ) / bulk_seconds
    speedup = bulk_rate / pipeline_rate
    record(
        "P8",
        "bulk loader vs statement pipeline",
        ">= 10x ingest throughput (no parse/journal/commit per row)",
        f"pipeline {pipeline_rate:,.0f} entities/s vs bulk "
        f"{bulk_rate:,.0f} entities/s = {speedup:.1f}x",
    )

    # -- bytes per entity: columnar vs seed dict-of-objects layout -----
    with tempfile.TemporaryDirectory() as tmp:
        nodes_path, rels_path = write_synthetic_csv(tmp, memory_sample)
        sample = load_store(
            iter_nodes_csv(nodes_path), iter_rels_csv(rels_path)
        )
        naive_bytes = naive_layout_bytes(
            (
                (labels, properties)
                for __, labels, properties in iter_nodes_csv(nodes_path)
            ),
            (
                (rel_type, source, target, properties)
                for __, rel_type, source, target, properties in (
                    iter_rels_csv(rels_path)
                )
            ),
        )
    report = store_memory_report(sample)
    entities = sample.node_count() + sample.relationship_count()
    naive_per_entity = naive_bytes / entities
    reduction = naive_per_entity / report["bytes_per_entity"]
    record(
        "P8",
        "bytes per entity (columnar vs dict-of-objects)",
        ">= 2x smaller than the seed layout",
        f"naive {naive_per_entity:.0f} B/entity vs columnar "
        f"{report['bytes_per_entity']:.0f} B/entity = {reduction:.1f}x "
        f"(node {report['bytes_per_node']:.0f} B, "
        f"rel {report['bytes_per_rel']:.0f} B)",
    )

    # -- scaling curve: nodes vs throughput vs RSS vs match latency ----
    for scale in scales:
        with tempfile.TemporaryDirectory() as tmp:
            nodes_path, rels_path = write_synthetic_csv(tmp, scale)
            rss_before = rss_bytes()
            started = time.perf_counter()
            store = load_store(
                iter_nodes_csv(nodes_path),
                iter_rels_csv(rels_path),
                indexes=[("Person", "id")],
            )
            load_seconds = time.perf_counter() - started
            rss_after = rss_bytes()
        rate = (store.node_count() + store.relationship_count()) / load_seconds
        loaded = Graph(Dialect.REVISED, use_planner=True, store=store)
        probes = [int(scale * frac) % scale for frac in
                  (0.1, 0.25, 0.5, 0.75, 0.9)] * 4
        loaded.run(
            "MATCH (p:Person {id: $i}) RETURN p.name", i=probes[0]
        )  # warm caches
        started = time.perf_counter()
        for probe in probes:
            result = loaded.run(
                "MATCH (p:Person {id: $i})-[:FOLLOWS]->(q) "
                "RETURN p.name, q.name",
                i=probe,
            )
            assert len(result.table.records) == 1
        match_ms = (time.perf_counter() - started) * 1000 / len(probes)
        if rss_before is not None and rss_after is not None:
            rss_text = f"RSS +{(rss_after - rss_before) / 2**20:.0f} MiB"
        else:
            rss_text = "RSS n/a"
        per_node = store_memory_report(store)["bytes_per_node"]
        record(
            "P8",
            f"scaling {scale} nodes",
            "linear load rate, flat bytes/node, sub-ms indexed match",
            f"{rate:,.0f} entities/s load, {rss_text}, "
            f"{per_node:.0f} B/node, indexed 1-hop match "
            f"{match_ms:.2f} ms",
            elapsed_ms=load_seconds * 1000,
        )
        del store, loaded


def p9_parallel_execution(
    users: int = 12000, probes: int = 32, fuzz_cases: int = 200
) -> None:
    """Morsel-parallel read execution vs the serial pipeline.

    The workload is the P4 selective-match shape driven through UNWIND:
    each probe forces a full naive enumeration of the User fan-out
    (planner and rewrites off), so per-row Python work dominates and
    the driving table splits cleanly into morsels.  The process
    executor is used where fork exists -- the GIL caps thread-mode
    speedup for CPU-bound predicates -- so real speedup needs real
    cores: the >= 2.5x expectation applies on hosts with >= 4 of them,
    and the measured row always records how many were available.
    """
    import os

    from repro.runtime.parallel import _fork_available

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:
        cores = os.cpu_count() or 1
    print(
        f"\nP9  Morsel-parallel execution ({users} User nodes, "
        f"{probes} probes, 4 workers on {cores} core(s))"
    )
    graph = Graph(Dialect.REVISED)
    store = graph.store
    products = [
        store.create_node(("Product",), {"id": i}) for i in range(120)
    ]
    for i in range(users):
        user = store.create_node(("User",), {"id": i})
        store.create_relationship("ORDERED", user, products[i % 120])
    executor = "process" if _fork_available() else "thread"
    fanned = Graph(
        Dialect.REVISED, workers=4, parallel=executor, store=store
    )
    statement = (
        "UNWIND $pids AS pid "
        "MATCH (u:User)-[:ORDERED]->(p:Product) WHERE p.id = pid "
        "RETURN count(u) AS c"
    )
    params = {"pids": [(7 * probe) % 120 for probe in range(probes)]}
    serial_count = graph.run(statement, params).single()["c"]  # warm
    _, serial_ms, serial_hits = measured_call(
        store, lambda: graph.run(statement, params)
    )
    fanned.run(statement, params)  # warm (and fork sanity)
    started = time.perf_counter()
    parallel_result = fanned.run(statement, params)
    parallel_ms = (time.perf_counter() - started) * 1000
    assert parallel_result.single()["c"] == serial_count
    speedup = serial_ms / parallel_ms if parallel_ms else float("inf")
    record(
        "P9",
        "serial pipeline (workers=1)",
        "row-at-a-time Python; every probe scans the fan-out",
        f"{serial_count} orders counted in {serial_ms:.1f} ms; "
        f"db hits {serial_hits.compact()}",
        elapsed_ms=serial_ms,
        db_hits=serial_hits.to_dict(),
    )
    record(
        "P9",
        f"morsel scheduler (workers=4, {executor})",
        "record-local segment split into morsels across workers",
        f"{serial_count} orders counted in {parallel_ms:.1f} ms",
        elapsed_ms=parallel_ms,
    )
    record(
        "P9",
        "speedup",
        ">= 2.5x at 4 workers over serial (given >= 4 cores)",
        f"{speedup:.2f}x on {cores} core(s)",
    )

    # -- parallel differential fuzz: scheduler vs serial, exact ------
    from repro.testing.differential import run_case
    from repro.testing.generator import cases

    batch = list(cases(seed=0, count=fuzz_cases))
    started = time.perf_counter()
    results = [run_case(case, workers=2) for case in batch]
    elapsed = (time.perf_counter() - started) * 1000
    divergences = sum(not result.ok for result in results)
    record(
        "P9",
        f"parallel differential fuzz ({fuzz_cases} cases)",
        "morsel and rewrite variants agree exactly with serial",
        f"{fuzz_cases - divergences}/{fuzz_cases} cases ok, "
        f"{divergences} divergences, "
        f"{fuzz_cases / (elapsed / 1000):.0f} cases/s",
        elapsed_ms=elapsed,
    )
    assert divergences == 0, f"{divergences} parallel fuzz divergences"


def p10_view_maintenance(
    users: int = 100_000,
    writes: int = 30,
    reads_per_write: int = 4,
    fuzz_cases: int = 200,
) -> None:
    """Incremental view maintenance vs re-executing the hot query.

    One writer interleaves order creations (relevant to the view) with
    profile edits (provably irrelevant); after every commit a pool of
    hot-query readers asks for the same result.  The maintained view
    pays one footprint check -- and, when the commit matters, a delta
    refresh over the few affected nodes -- then serves every further
    reader from the cached result object; re-execution pays the full
    match each time.  Both paths read the same store in the same
    iteration, so the comparison is exact.
    """
    print(
        f"\nP10 Incremental view maintenance ({users} User nodes, "
        f"{writes} writes x {reads_per_write} readers)"
    )
    graph = Graph(Dialect.REVISED)
    store = graph.store
    products = [
        store.create_node(("Product",), {"id": i}) for i in range(120)
    ]
    for i in range(users):
        user = store.create_node(("User",), {"id": i, "name": f"u{i}"})
        store.create_relationship("ORDERED", user, products[i % 120])
    hot_query = (
        "MATCH (u:User)-[:ORDERED]->(p:Product) "
        "WHERE p.id = 7 RETURN u.id AS id"
    )
    view = graph.register_view(hot_query)
    baseline_rows = len(view.result().records)
    reexec_s = 0.0
    maintained_s = 0.0
    for step in range(writes):
        if step % 2 == 0:
            graph.run(
                "MATCH (p:Product {id: 7}) "
                "CREATE (:User {id: $id})-[:ORDERED]->(p)",
                {"id": users + step},
            )
        else:
            # irrelevant to the view: property key outside its footprint
            graph.run(
                "MATCH (u:User {id: $id}) SET u.name = 'edited'",
                {"id": step},
            )
        for _ in range(reads_per_write):
            started = time.perf_counter()
            fresh = graph.run(hot_query)
            reexec_s += time.perf_counter() - started
            started = time.perf_counter()
            maintained = view.result()
            maintained_s += time.perf_counter() - started
            assert sorted(r["id"] for r in fresh.records) == sorted(
                r["id"] for r in maintained.to_dicts()
            ), "maintained view diverged from re-execution"
    rows = len(view.result().records)
    assert rows == baseline_rows + (writes + 1) // 2
    stats = graph.views()[0]
    reads = writes * reads_per_write
    speedup = reexec_s / maintained_s if maintained_s else float("inf")
    record(
        "P10",
        f"re-executed hot query ({reads} reads)",
        "every reader pays the full match after each commit",
        f"{rows} rows, {reexec_s * 1000:.1f} ms total "
        f"({reexec_s / reads * 1e6:.0f} us/read)",
        elapsed_ms=reexec_s * 1000,
    )
    record(
        "P10",
        f"maintained view ({reads} reads)",
        "delta refresh on relevant commits, cached object otherwise",
        f"{rows} rows, {maintained_s * 1000:.1f} ms total; "
        f"{stats['delta_refreshes']} delta refreshes, "
        f"{stats['batches_skipped']} commits skipped as irrelevant",
        elapsed_ms=maintained_s * 1000,
    )
    record(
        "P10",
        "speedup",
        ">= 10x over re-execution at 100k nodes",
        f"{speedup:.1f}x",
    )
    graph.close()

    # -- view differential fuzz: maintained == re-executed ----------
    from repro.testing.differential import run_views_case
    from repro.testing.generator import case_for, with_views

    started = time.perf_counter()
    results = [
        run_views_case(with_views(case_for(0, index), 4))
        for index in range(fuzz_cases)
    ]
    elapsed = (time.perf_counter() - started) * 1000
    divergences = sum(not result.ok for result in results)
    record(
        "P10",
        f"view differential fuzz ({fuzz_cases} cases)",
        "maintained results equal re-execution after every statement",
        f"{fuzz_cases - divergences}/{fuzz_cases} cases ok, "
        f"{divergences} divergences, "
        f"{fuzz_cases / (elapsed / 1000):.0f} cases/s",
        elapsed_ms=elapsed,
    )
    assert divergences == 0, f"{divergences} view fuzz divergences"


def p11_streaming_scale(
    scales: tuple[int, ...] = (1_000_000, 10_000_000),
    checkpoint_probes: tuple[int, int] = (50_000, 200_000),
    equivalence_nodes: int = 20_000,
    workers: int = 2,
) -> None:
    """Streaming checkpoints + parallel CSV at the 10M-node scale.

    Four pieces of evidence:

    * **O(1) checkpoint memory** -- tracemalloc peak of a checkpoint
      write at two graph sizes, streaming (format 2) vs blob
      (format 1).  The blob peak grows with the graph; the streaming
      peak stays a small constant (one ``BATCH_ROWS`` record).
    * **Format equivalence** -- the same store written both ways and
      restored through both readers is byte-identical under
      ``canonical_graph_json``.
    * **Parallel CSV parse** -- chunked fork-pool parsing vs the
      serial iterator over the same file; honest about core count
      (the fork pool only wins with real cores to burn).
    * **The scale curve** -- synthetic CSV -> parallel bulk load ->
      streaming checkpoint -> reopen.  At each scale: load rate,
      steady-state RSS, the peak/steady ratio (the ISSUE criterion is
      peak < 2x steady at 10M), checkpoint write time and the RSS it
      did NOT add, and a zero-replay reopen from the checkpoint.
    """
    import os
    import sys
    import tempfile

    sys.path.insert(0, str(Path(__file__).parent))
    from memprof import checkpoint_write_peak, peak_rss_bytes, rss_bytes

    from repro.bulkload import (
        emit_checkpoint,
        iter_nodes_csv,
        iter_nodes_csv_parallel,
        iter_rels_csv,
        iter_rels_csv_parallel,
        load_store,
        write_synthetic_csv,
    )
    from repro.graph.store import GraphStore
    from repro.persistence.checkpoint import (
        CHECKPOINT_FORMAT,
        CHECKPOINT_NAME,
        LEGACY_CHECKPOINT_FORMAT,
        restore_checkpoint_file,
        write_checkpoint,
    )
    from repro.testing.invariants import canonical_graph_json

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:
        cores = os.cpu_count() or 1
    print(
        f"\nP11 Streaming checkpoints at scale "
        f"(scales {', '.join(str(s) for s in scales)}, "
        f"{workers} CSV workers on {cores} core(s))"
    )

    # -- checkpoint write memory: stream O(1) vs blob O(graph) --------
    peaks: dict[int, dict[int, int]] = {}
    for probe in checkpoint_probes:
        with tempfile.TemporaryDirectory() as tmp:
            nodes_path, rels_path = write_synthetic_csv(tmp, probe)
            store = load_store(
                iter_nodes_csv(nodes_path), iter_rels_csv(rels_path)
            )
            peaks[probe] = {
                fmt: checkpoint_write_peak(store, tmp, format=fmt)
                for fmt in (LEGACY_CHECKPOINT_FORMAT, CHECKPOINT_FORMAT)
            }
            del store
    small, large = checkpoint_probes
    blob_growth = (
        peaks[large][LEGACY_CHECKPOINT_FORMAT]
        / max(1, peaks[small][LEGACY_CHECKPOINT_FORMAT])
    )
    stream_growth = (
        peaks[large][CHECKPOINT_FORMAT]
        / max(1, peaks[small][CHECKPOINT_FORMAT])
    )
    record(
        "P11",
        f"checkpoint write memory ({small} -> {large} nodes)",
        "blob peak grows with the graph; streaming peak is flat",
        f"blob {peaks[small][LEGACY_CHECKPOINT_FORMAT] / 2**20:.1f} -> "
        f"{peaks[large][LEGACY_CHECKPOINT_FORMAT] / 2**20:.1f} MiB "
        f"({blob_growth:.1f}x) vs stream "
        f"{peaks[small][CHECKPOINT_FORMAT] / 2**20:.2f} -> "
        f"{peaks[large][CHECKPOINT_FORMAT] / 2**20:.2f} MiB "
        f"({stream_growth:.1f}x)",
    )

    # -- stream and blob restores are byte-identical ------------------
    with tempfile.TemporaryDirectory() as tmp:
        nodes_path, rels_path = write_synthetic_csv(tmp, equivalence_nodes)
        store = load_store(
            iter_nodes_csv(nodes_path),
            iter_rels_csv(rels_path),
            indexes=[("Person", "id")],
        )
        wanted = canonical_graph_json(store)
        restored = {}
        for fmt in (LEGACY_CHECKPOINT_FORMAT, CHECKPOINT_FORMAT):
            write_checkpoint(tmp, store, 0, format=fmt)
            target = GraphStore()
            restore_checkpoint_file(target, Path(tmp) / CHECKPOINT_NAME)
            restored[fmt] = canonical_graph_json(target)
            del target
        del store
    identical = all(text == wanted for text in restored.values())
    record(
        "P11",
        f"format-1 vs format-2 restore ({equivalence_nodes} nodes)",
        "both readers rebuild the identical graph, byte for byte",
        "canonical_graph_json identical across source, blob restore, "
        f"stream restore: {identical}",
    )
    assert identical, "streaming restore diverged from the blob path"

    # -- parallel CSV parse vs serial ---------------------------------
    # 1 MiB chunks force the real fork-pool path even at quick-mode
    # file sizes (the default 8 MiB chunk makes a small file a single
    # range, which falls back to the serial parser).
    parse_nodes = scales[0]
    with tempfile.TemporaryDirectory() as tmp:
        nodes_path, rels_path = write_synthetic_csv(tmp, parse_nodes)
        started = time.perf_counter()
        serial_rows = sum(1 for __ in iter_nodes_csv(nodes_path))
        serial_s = time.perf_counter() - started
        started = time.perf_counter()
        parallel_rows = sum(
            1
            for __ in iter_nodes_csv_parallel(
                nodes_path, workers=workers, chunk_bytes=1 << 20
            )
        )
        parallel_s = time.perf_counter() - started
    assert parallel_rows == serial_rows
    ratio = serial_s / parallel_s if parallel_s else float("inf")
    record(
        "P11",
        f"parallel CSV parse ({parse_nodes} nodes, {workers} workers)",
        "chunked fork-pool parse; needs real cores -- on 1 core the "
        "row-pickling IPC is pure overhead, so expect < 1x there and "
        "scaling only with GIL-free workers to spare",
        f"serial {serial_rows / serial_s:,.0f} rows/s vs parallel "
        f"{parallel_rows / parallel_s:,.0f} rows/s = {ratio:.2f}x "
        f"on {cores} core(s)",
        elapsed_ms=parallel_s * 1000,
    )

    # -- the scale curve: load -> checkpoint -> reopen ----------------
    for scale in scales:
        with tempfile.TemporaryDirectory() as tmp:
            started = time.perf_counter()
            nodes_path, rels_path = write_synthetic_csv(tmp, scale)
            synth_s = time.perf_counter() - started
            rss_before = rss_bytes()
            started = time.perf_counter()
            store = load_store(
                iter_nodes_csv_parallel(nodes_path, workers=workers),
                iter_rels_csv_parallel(rels_path, workers=workers),
                indexes=[("Person", "id")],
            )
            load_s = time.perf_counter() - started
            entities = store.node_count() + store.relationship_count()
            rss_steady = rss_bytes()
            peak_after_load = peak_rss_bytes()
            started = time.perf_counter()
            emit_checkpoint(tmp, store)
            checkpoint_s = time.perf_counter() - started
            checkpoint_mib = (
                Path(tmp) / CHECKPOINT_NAME
            ).stat().st_size / 2**20
            peak_after_ckpt = peak_rss_bytes()
            del store
            started = time.perf_counter()
            reopened = Graph.open(tmp, fsync="off")
            reopen_s = time.perf_counter() - started
            report = reopened.recovery
            assert report.records_applied == 0, "reopen replayed WAL"
            assert report.checkpoint_format == CHECKPOINT_FORMAT
            assert (
                reopened.store.node_count()
                + reopened.store.relationship_count()
                == entities
            )
            reopened.close()
            del reopened
        if rss_before is not None and rss_steady is not None:
            steady_mib = (rss_steady - rss_before) / 2**20
            peak_ratio = (
                (peak_after_load - rss_before) / (rss_steady - rss_before)
                if rss_steady > rss_before
                else float("nan")
            )
            ckpt_added_mib = (peak_after_ckpt - peak_after_load) / 2**20
            rss_text = (
                f"store +{steady_mib:,.0f} MiB steady, load peak "
                f"{peak_ratio:.2f}x steady, checkpoint added "
                f"+{ckpt_added_mib:,.0f} MiB peak"
            )
        else:
            rss_text = "RSS n/a"
        record(
            "P11",
            f"scale {scale} nodes ({entities} entities)",
            "linear load, peak RSS < 2x steady store, O(1)-memory "
            "streaming checkpoint, zero-replay reopen",
            f"load {entities / load_s:,.0f} entities/s "
            f"(csv gen {synth_s:.0f}s), {rss_text}; checkpoint "
            f"{checkpoint_mib:,.0f} MiB in {checkpoint_s:.1f}s; reopen "
            f"{reopen_s:.1f}s with 0 replayed records",
            elapsed_ms=load_s * 1000,
        )


def print_markdown() -> None:
    print("\n\n## Markdown table (paste into EXPERIMENTS.md)\n")
    print("| Exp | Artifact | Paper says | Measured |")
    print("|---|---|---|---|")
    for row in ROWS:
        print(
            f"| {row['experiment']} | {row['artifact']} "
            f"| {row['paper']} | {row['measured']} |"
        )


def write_json() -> None:
    """Write ``BENCH_harness.json``: every entry carries ``db_hits``."""
    BENCH_JSON.write_text(
        json.dumps({"experiments": ROWS}, indent=2) + "\n",
        encoding="utf-8",
    )
    print(f"\nwrote {BENCH_JSON}")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Regenerate every paper artifact and BENCH_harness.json"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke run: shrink the P3/P4 workloads so CI fails fast",
    )
    args = parser.parse_args(argv)
    print("Reproduction harness: Updating Graph Databases with Cypher")
    e1_running_example()
    e2_set_swap()
    e3_set_conflict()
    e4_delete_anomaly()
    e5_merge_nondeterminism()
    e6_figure7()
    e7_figure8()
    e8_figure9()
    e9_grammars()
    p1_scaling_teaser()
    p2_profile_observability()
    p3_expression_compiler(rows=1500 if args.quick else 12000)
    p4_selective_match(users=1500 if args.quick else 12000)
    p5_fuzz_throughput(count=30 if args.quick else 120)
    p6_durability(statements=200 if args.quick else 1000)
    p7_concurrent_service(
        clients=24 if args.quick else 100,
        statements_per_client=5 if args.quick else 10,
    )
    p8_columnar_scaling(
        scales=(5_000, 50_000) if args.quick else (10_000, 100_000, 1_000_000),
        pipeline_nodes=2000 if args.quick else 5000,
        memory_sample=5_000 if args.quick else 20_000,
    )
    p9_parallel_execution(
        users=1500 if args.quick else 12000,
        probes=8 if args.quick else 32,
        fuzz_cases=30 if args.quick else 200,
    )
    p10_view_maintenance(
        users=10_000 if args.quick else 100_000,
        writes=10 if args.quick else 30,
        fuzz_cases=30 if args.quick else 200,
    )
    p11_streaming_scale(
        scales=(
            (100_000,) if args.quick else (1_000_000, 10_000_000)
        ),
        checkpoint_probes=(
            (20_000, 60_000) if args.quick else (50_000, 200_000)
        ),
        equivalence_nodes=5_000 if args.quick else 20_000,
    )
    print_markdown()
    write_json()


if __name__ == "__main__":
    main()
