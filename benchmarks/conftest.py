"""Shared helpers for the benchmark suite.

Every benchmark regenerates a paper artifact (table/figure) or runs a
scaling sweep, *asserts* the expected shape, and reports timing via
pytest-benchmark.  EXPERIMENTS.md records the paper-vs-measured
comparison these benches print.
"""

from __future__ import annotations

import pytest

from repro import Dialect, Graph
from repro.core.merge import merge
from repro.parser import parse
from repro.runtime.context import EvalContext


def merge_pattern(source: str):
    """Parse a MERGE pattern for direct use with repro.core.merge."""
    statement = parse(
        "MERGE ALL " + source, Dialect.REVISED, extended_merge=True
    )
    return statement.branches()[0].clauses[0].pattern


def run_variant(store_factory, pattern, table, semantics):
    """Build a fresh graph, run one MERGE variant, return the Graph."""
    graph = Graph(Dialect.REVISED, store=store_factory())
    ctx = EvalContext(store=graph.store)
    merge(ctx, pattern, table.copy(), semantics)
    return graph


@pytest.fixture
def fresh_graph():
    """A factory for empty revised-dialect graphs."""
    return lambda: Graph(Dialect.REVISED)
