"""Memory profiling helpers for the P8 scaling experiment.

Three complementary measurements, all stdlib-only:

* :func:`deep_sizeof` -- iterative ``sys.getsizeof`` closure over an
  object graph with identity-based deduplication, so shared objects
  (interned strings, shared label ``frozenset`` instances, pooled
  property keys) are charged **once**.  This is what makes the
  before/after comparison honest: the columnar store's savings come
  precisely from sharing.
* :func:`rss_bytes` -- the process resident set from
  ``/proc/self/status`` (no psutil dependency; returns ``None`` off
  Linux), for the scaling-curve "can a 10M-node graph fit" question.
* :func:`peak_rss_bytes` -- the lifetime high-water mark (``VmHWM``),
  for the P11 "peak stays under 2x the steady-state store" criterion.
* :func:`measure_allocation` -- a ``tracemalloc`` bracket around a
  callable, reporting the net and peak allocation it caused.
* :func:`checkpoint_write_peak` -- that bracket around a checkpoint
  write, the number that separates the streaming format (O(batch)
  peak, flat across graph sizes) from the legacy blob (O(graph)).

:func:`store_memory_report` combines them into the bytes-per-entity
numbers the harness records, and :func:`naive_layout_bytes` prices the
same graph in the seed dict-of-objects layout (per-node label ``set``
and property ``dict``, ``dict[int, set[int]]`` adjacency with nested
per-type buckets) so the ≥2x reduction claim is measured against a
faithful replica rather than a remembered number.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Any, Callable, Iterable

from repro.graph.store import GraphStore


def deep_sizeof(root: Any, *, seen: set[int] | None = None) -> int:
    """Total ``sys.getsizeof`` over *root* and everything it references.

    Iterative (no recursion limit), deduplicating by object identity:
    an object reachable through several paths is counted once.  Pass a
    shared *seen* set to charge objects across several calls only once
    (e.g. the string pool shared by every column).
    """
    if seen is None:
        seen = set()
    total = 0
    stack = [root]
    while stack:
        obj = stack.pop()
        identity = id(obj)
        if identity in seen:
            continue
        seen.add(identity)
        total += sys.getsizeof(obj)
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif hasattr(obj, "__dict__"):
            stack.append(obj.__dict__)
        elif hasattr(obj, "__slots__"):
            for slot in obj.__slots__:
                if hasattr(obj, slot):
                    stack.append(getattr(obj, slot))
    return total


def rss_bytes() -> int | None:
    """Current resident set size, or ``None`` where /proc is absent."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def peak_rss_bytes() -> int | None:
    """Lifetime peak resident set (``VmHWM``), or ``None`` off Linux."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def measure_allocation(
    action: Callable[[], Any]
) -> tuple[Any, int, int]:
    """Run *action* under tracemalloc; returns (result, net, peak) bytes."""
    tracemalloc.start()
    try:
        before, __ = tracemalloc.get_traced_memory()
        result = action()
        after, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, after - before, peak - before


def checkpoint_write_peak(
    store: GraphStore, directory, *, format: int
) -> int:
    """tracemalloc peak (bytes) of one checkpoint write at *format*.

    The blob format materialises the whole payload dict before
    ``json.dump``, so its peak grows with the graph; the streaming
    format serialises ``BATCH_ROWS``-sized records, so its peak is a
    small constant.  P11 measures both at two graph sizes and records
    the growth ratio.
    """
    from repro.persistence.checkpoint import write_checkpoint

    __, __, peak = measure_allocation(
        lambda: write_checkpoint(directory, store, 0, format=format)
    )
    return peak


def store_memory_report(store: GraphStore) -> dict:
    """Deep-size the store's hot structures, per entity.

    One shared ``seen`` set across all structures, so the string pool
    and the shared label frozensets are charged exactly once no matter
    how many columns reference them.
    """
    seen: set[int] = set()
    breakdown = {
        "string_pool": deep_sizeof(store._strings, seen=seen),
        "labelsets": (
            deep_sizeof(store._labelset_masks, seen=seen)
            + deep_sizeof(store._labelset_strings, seen=seen)
            + deep_sizeof(store._labelset_ids, seen=seen)
        ),
        "node_columns": (
            deep_sizeof(store._node_labelsets, seen=seen)
            + deep_sizeof(store._node_props, seen=seen)
            + deep_sizeof(store._node_deleted, seen=seen)
        ),
        "rel_columns": (
            deep_sizeof(store._rel_types, seen=seen)
            + deep_sizeof(store._rel_source, seen=seen)
            + deep_sizeof(store._rel_target, seen=seen)
            + deep_sizeof(store._rel_props, seen=seen)
            + deep_sizeof(store._rel_deleted, seen=seen)
        ),
        "adjacency": (
            deep_sizeof(store._adj_out, seen=seen)
            + deep_sizeof(store._adj_in, seen=seen)
        ),
        "label_index": deep_sizeof(store._label_index, seen=seen),
        "property_indexes": deep_sizeof(
            store._property_indexes, seen=seen
        ),
    }
    total = sum(breakdown.values())
    nodes = max(store.node_count(), 1)
    rels = max(store.relationship_count(), 1)
    return {
        "total_bytes": total,
        "breakdown": breakdown,
        "bytes_per_node": round(
            (
                breakdown["node_columns"]
                + breakdown["labelsets"]
                + breakdown["label_index"]
            )
            / nodes,
            1,
        ),
        "bytes_per_rel": round(
            (breakdown["rel_columns"] + breakdown["adjacency"]) / rels, 1
        ),
        "bytes_per_entity": round(
            total / (store.node_count() + store.relationship_count() or 1),
            1,
        ),
    }


def naive_layout_bytes(
    nodes: Iterable[tuple[Iterable[str], dict]],
    rels: Iterable[tuple[str, int, int, dict]],
) -> int:
    """Deep size of the same data in the seed dict-of-objects layout.

    Replicates what the pre-columnar store kept per entity: a record
    object with a label ``set`` and property ``dict`` per node (fresh
    strings per record, as ``json``/CSV parsing produces), a record
    with type/source/target/properties per relationship, two
    ``dict[int, set[int]]`` adjacency maps, and the nested per-type
    ``dict[int, dict[str, set[int]]]`` maps.
    """

    class _NodeRecord:
        __slots__ = ("labels", "properties", "deleted")

        def __init__(self, labels, properties):
            self.labels = labels
            self.properties = properties
            self.deleted = False

    class _RelRecord:
        __slots__ = ("type", "source", "target", "properties", "deleted")

        def __init__(self, rel_type, source, target, properties):
            self.type = rel_type
            self.source = source
            self.target = target
            self.properties = properties
            self.deleted = False

    node_records: dict[int, Any] = {}
    out: dict[int, set[int]] = {}
    inn: dict[int, set[int]] = {}
    out_by_type: dict[int, dict[str, set[int]]] = {}
    in_by_type: dict[int, dict[str, set[int]]] = {}
    for node_id, (labels, properties) in enumerate(nodes):
        # str(...) forces distinct string objects per record, matching
        # what repeated parsing allocated before interning existed.
        node_records[node_id] = _NodeRecord(
            {str(label) for label in labels},
            {str(key): value for key, value in properties.items()},
        )
        out[node_id] = set()
        inn[node_id] = set()
        out_by_type[node_id] = {}
        in_by_type[node_id] = {}
    rel_records: dict[int, Any] = {}
    for rel_id, (rel_type, source, target, properties) in enumerate(rels):
        rel_records[rel_id] = _RelRecord(
            str(rel_type),
            source,
            target,
            {str(key): value for key, value in properties.items()},
        )
        out[source].add(rel_id)
        inn[target].add(rel_id)
        out_by_type[source].setdefault(str(rel_type), set()).add(rel_id)
        in_by_type[target].setdefault(str(rel_type), set()).add(rel_id)

    seen: set[int] = set()
    return (
        deep_sizeof(node_records, seen=seen)
        + deep_sizeof(rel_records, seen=seen)
        + deep_sizeof(out, seen=seen)
        + deep_sizeof(inn, seen=seen)
        + deep_sizeof(out_by_type, seen=seen)
        + deep_sizeof(in_by_type, seen=seen)
    )
