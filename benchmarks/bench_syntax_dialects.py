"""E9 -- the two grammars (Figures 2-5 vs Figure 10).

Shape checks: the dialect corpus of legal/illegal statements parses or
is rejected exactly as the grammars dictate.  Timings measure parser
throughput over the corpus and a large synthetic statement.
"""

import pytest

from repro.dialect import Dialect
from repro.errors import CypherSyntaxError
from repro.parser import parse
from repro.parser.unparse import unparse

CORPUS = [
    "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
    "WHERE p.name = 'laptop' RETURN v",
    "MATCH (u:User{id:89}) CREATE (u)-[:ORDERED]->(:New_Product{id:0})",
    "MATCH (p:New_Product{id:0}) SET p:Product, p.id=120, "
    "p.name='smartphone' REMOVE p:New_Product",
    "MATCH (p:Product{id:120}) DETACH DELETE p",
    "UNWIND [1, 2, 3] AS x WITH x WHERE x > 1 "
    "RETURN x * 2 AS y ORDER BY y DESC LIMIT 2",
    "MATCH (a)-[:TO*1..3]->(b) RETURN count(*) AS c, collect(b.id) AS ids",
    "FOREACH (x IN [1, 2] | CREATE (:N {v: x}))",
]

LEGACY_EXTRA = [
    "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) RETURN p, v",
    "MERGE (u:User {id: 1}) ON CREATE SET u.created = true",
]

REVISED_EXTRA = [
    "MERGE ALL (:User{id:cid})-[:ORDERED]->(:Product{id:pid})",
    "MERGE SAME (:User{id:bid})-[:ORDERED]->(:Product{id:pid})"
    "<-[:OFFERS]-(:User{id:sid})",
    "CREATE (n:N) MATCH (m) RETURN m",
]


def test_parse_corpus_cypher9(benchmark):
    corpus = CORPUS + LEGACY_EXTRA

    def run():
        return [parse(source, Dialect.CYPHER9) for source in corpus]

    statements = benchmark(run)
    assert len(statements) == len(corpus)


def test_parse_corpus_revised(benchmark):
    corpus = CORPUS + REVISED_EXTRA

    def run():
        return [parse(source, Dialect.REVISED) for source in corpus]

    statements = benchmark(run)
    assert len(statements) == len(corpus)


def test_dialect_rejections(benchmark):
    def run():
        rejected = 0
        for source in REVISED_EXTRA:
            try:
                parse(source, Dialect.CYPHER9)
            except CypherSyntaxError:
                rejected += 1
        for source in LEGACY_EXTRA:
            try:
                parse(source, Dialect.REVISED)
            except CypherSyntaxError:
                rejected += 1
        return rejected

    rejected = benchmark(run)
    assert rejected == len(REVISED_EXTRA) + len(LEGACY_EXTRA)


def test_parse_large_statement(benchmark):
    maps = ", ".join(
        "{id: %d, name: 'p%d'}" % (i, i) for i in range(200)
    )
    source = (
        f"UNWIND [{maps}] AS row "
        "MERGE SAME (:Product {id: row.id, name: row.name}) "
    )

    statement = benchmark(parse, source, Dialect.REVISED)
    assert len(statement.branches()[0].clauses) == 2


def test_round_trip_corpus(benchmark):
    corpus = CORPUS + REVISED_EXTRA

    def run():
        texts = []
        for source in corpus:
            texts.append(unparse(parse(source, Dialect.REVISED)))
        return texts

    texts = benchmark(run)
    for text in texts:
        assert unparse(parse(text, Dialect.REVISED)) == text
