"""E3 -- Example 2: ambiguous SET on dirty data.

Shape checks: legacy silently writes one of the two candidate values
(order-dependent); revised aborts with PropertyConflictError and leaves
the graph unchanged.  The revised timing includes the rollback.
"""

import pytest

from repro import Dialect, Graph, PropertyConflictError
from repro.paper import EXAMPLE_2_COPY_NAME, figure1_graph


def test_legacy_silent_overwrite(benchmark):
    def run():
        graph = Graph(Dialect.CYPHER9, store=figure1_graph())
        graph.run(EXAMPLE_2_COPY_NAME)
        return graph

    graph = benchmark(run)
    name = graph.run(
        "MATCH (p:Product {id: 85}) RETURN p.name AS n"
    ).values("n")[0]
    assert name in ("laptop", "notebook")


def test_revised_conflict_detection_and_rollback(benchmark):
    def run():
        graph = Graph(Dialect.REVISED, store=figure1_graph())
        with pytest.raises(PropertyConflictError):
            graph.run(EXAMPLE_2_COPY_NAME)
        return graph

    graph = benchmark(run)
    # Statement rolled back: the tablet still has its original name.
    name = graph.run(
        "MATCH (p:Product {id: 85}) RETURN p.name AS n"
    ).values("n")[0]
    assert name == "tablet"


def test_conflict_scan_scaling(benchmark):
    """Conflict detection over 1000 consistent writes (no conflict)."""

    def run():
        graph = Graph(Dialect.REVISED)
        graph.run("UNWIND range(0, 999) AS i CREATE (:N {k: i})")
        graph.run("MATCH (n:N) SET n.v = n.k * 2")
        return graph

    graph = benchmark(run)
    total = graph.run("MATCH (n:N) RETURN sum(n.v) AS s").values("s")[0]
    assert total == 2 * sum(range(1000))
