"""E7 -- Example 6 / Figure 8: Weak Collapse vs (Strong) Collapse.

Shape checks (paper, Figure 8): Atomic/Grouping/Weak keep the two
buyer/seller copies of user 98 apart (6 nodes); Collapse and Strong
Collapse combine them (5 nodes).  All variants produce 4 relationships.
"""

import pytest

from repro import GraphStore, MergeSemantics
from repro.paper import (
    EXAMPLE_6_PATTERN,
    FIGURE_8A_EXPECTED,
    FIGURE_8B_EXPECTED,
    example6_table,
)

from conftest import merge_pattern, run_variant

EXPECTED = {
    MergeSemantics.ATOMIC: FIGURE_8A_EXPECTED,
    MergeSemantics.GROUPING: FIGURE_8A_EXPECTED,
    MergeSemantics.WEAK_COLLAPSE: FIGURE_8A_EXPECTED,
    MergeSemantics.COLLAPSE: FIGURE_8B_EXPECTED,
    MergeSemantics.STRONG_COLLAPSE: FIGURE_8B_EXPECTED,
}


@pytest.mark.parametrize("semantics", list(MergeSemantics), ids=lambda s: s.value)
def test_example6_variant(benchmark, semantics):
    pattern = merge_pattern(EXAMPLE_6_PATTERN)
    table = example6_table()

    graph = benchmark(run_variant, GraphStore, pattern, table, semantics)
    snapshot = graph.snapshot()
    assert (snapshot.order(), snapshot.size()) == EXPECTED[semantics]


def test_collapsed_user_is_buyer_and_seller(benchmark):
    pattern = merge_pattern(EXAMPLE_6_PATTERN)
    table = example6_table()

    graph = benchmark(
        run_variant, GraphStore, pattern, table, MergeSemantics.COLLAPSE
    )
    result = graph.run(
        "MATCH (buyer:User {id: 98})-[:ORDERED]->(), "
        "(seller:User {id: 98})-[:OFFERS]->() "
        "RETURN buyer = seller AS same"
    )
    assert result.values("same") == [True]
