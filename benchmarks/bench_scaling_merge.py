"""P1 -- MERGE variant scaling (added; the paper has no perf study).

Sweeps the five semantics over synthetic order tables of increasing
size and duplicate ratio.  Qualitative shapes to hold:

* the graph-size lattice |Atomic| >= |Grouping| >= |Weak| >= |Collapse|
  >= |Strong| at every size;
* higher duplicate ratios widen the Atomic-vs-Strong gap;
* the cache-based implementation (DESIGN.md decision 1) keeps the
  collapse variants within a small constant factor of Atomic, instead
  of paying the quadratic literal quotient.
"""

import pytest

from repro import Dialect, Graph, GraphStore, MergeSemantics
from repro.core.merge import merge
from repro.runtime.context import EvalContext
from repro.workloads.generators import OrderTableConfig, order_table

from conftest import merge_pattern

PATTERN = "(:User {id: cid})-[:ORDERED]->(:Product {id: pid})"

SIZES = [200, 1000]


def _run(table, semantics):
    graph = Graph(Dialect.REVISED)
    ctx = EvalContext(store=graph.store)
    merge(ctx, merge_pattern(PATTERN), table.copy(), semantics)
    return graph


@pytest.mark.parametrize("rows", SIZES)
@pytest.mark.parametrize(
    "semantics", list(MergeSemantics), ids=lambda s: s.value
)
def test_merge_scaling(benchmark, rows, semantics):
    table = order_table(
        OrderTableConfig(rows=rows, duplicate_ratio=0.3, null_ratio=0.1)
    )

    graph = benchmark(_run, table, semantics)
    assert graph.node_count() > 0
    benchmark.extra_info["nodes"] = graph.node_count()
    benchmark.extra_info["relationships"] = graph.relationship_count()


@pytest.mark.parametrize("duplicate_ratio", [0.0, 0.5, 0.9])
def test_duplicate_ratio_gap(benchmark, duplicate_ratio):
    """The Atomic-vs-Strong size gap grows with the duplicate ratio."""
    table = order_table(
        OrderTableConfig(
            rows=500,
            duplicate_ratio=duplicate_ratio,
            null_ratio=0.0,
            distinct_users=50,
            distinct_products=25,
        )
    )

    def run():
        atomic = _run(table, MergeSemantics.ATOMIC)
        strong = _run(table, MergeSemantics.STRONG_COLLAPSE)
        return atomic.node_count(), strong.node_count()

    atomic_nodes, strong_nodes = benchmark(run)
    assert atomic_nodes >= strong_nodes
    benchmark.extra_info["atomic_nodes"] = atomic_nodes
    benchmark.extra_info["strong_nodes"] = strong_nodes
    if duplicate_ratio >= 0.5:
        assert atomic_nodes > 1.5 * strong_nodes


def test_lattice_holds_at_scale():
    """Non-timing assertion: the size lattice at 1000 rows."""
    table = order_table(
        OrderTableConfig(rows=1000, duplicate_ratio=0.4, null_ratio=0.1)
    )
    sizes = []
    for semantics in (
        MergeSemantics.ATOMIC,
        MergeSemantics.GROUPING,
        MergeSemantics.WEAK_COLLAPSE,
        MergeSemantics.COLLAPSE,
        MergeSemantics.STRONG_COLLAPSE,
    ):
        graph = _run(table, semantics)
        sizes.append((graph.node_count(), graph.relationship_count()))
    assert sizes == sorted(sizes, reverse=True)


def test_ablation_literal_quotient(benchmark):
    """DESIGN.md decision 1: cache-based vs literal create-then-quotient.

    Runs the formal reference (quadratic pairwise collapse) on a table
    size where it is still tractable, for comparison against
    test_merge_scaling[200-strong_collapse].
    """
    from repro.formal import semantics as F

    table = order_table(
        OrderTableConfig(rows=200, duplicate_ratio=0.3, null_ratio=0.1)
    )
    rows = tuple(dict(record) for record in table)
    pattern = merge_pattern(PATTERN)

    outcome = benchmark(
        F.merge_variant, F.empty_graph(), pattern, rows, "strong_collapse"
    )
    engine_graph = _run(table, MergeSemantics.STRONG_COLLAPSE)
    assert outcome.graph.order() == engine_graph.node_count()
    assert outcome.graph.size() == engine_graph.relationship_count()
