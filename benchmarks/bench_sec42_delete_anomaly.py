"""E4 -- the Section 4.2 DELETE anomaly statement.

Shape checks: legacy executes the statement, returning an empty node;
revised rejects it atomically.  The scaling case measures strict-DELETE
validation (attached-relationship check) over growing graphs.
"""

import pytest

from repro import DanglingRelationshipError, Dialect, Graph
from repro.paper import SECTION_4_2_STATEMENT, section_4_2_graph


def test_legacy_zombie_statement(benchmark):
    def run():
        graph = Graph(Dialect.CYPHER9, store=section_4_2_graph())
        return graph.run(SECTION_4_2_STATEMENT)

    result = benchmark(run)
    zombie = result.records[0]["user"]
    assert zombie.labels == frozenset()
    assert dict(zombie.properties) == {}


def test_revised_strict_rejection(benchmark):
    def run():
        graph = Graph(Dialect.REVISED, store=section_4_2_graph())
        with pytest.raises(DanglingRelationshipError):
            graph.run(SECTION_4_2_STATEMENT)
        return graph

    graph = benchmark(run)
    assert graph.node_count() == 2
    assert graph.relationship_count() == 1


def test_detach_delete_hub_scaling(benchmark):
    """DETACH DELETE of a 500-relationship hub node (revised)."""

    def run():
        graph = Graph(Dialect.REVISED)
        graph.run("CREATE (:Hub)")
        graph.run(
            "MATCH (h:Hub) UNWIND range(0, 499) AS i "
            "CREATE (h)-[:SPOKE]->(:Leaf {i: i})"
        )
        graph.run("MATCH (h:Hub) DETACH DELETE h")
        return graph

    graph = benchmark(run)
    assert graph.relationship_count() == 0
    assert graph.node_count() == 500


def test_strict_validation_cost(benchmark):
    """Deleting 200 leaves and their spokes in one strict clause."""

    def run():
        graph = Graph(Dialect.REVISED)
        graph.run("CREATE (:Hub)")
        graph.run(
            "MATCH (h:Hub) UNWIND range(0, 199) AS i "
            "CREATE (h)-[:SPOKE]->(:Leaf {i: i})"
        )
        graph.run("MATCH (:Hub)-[r:SPOKE]->(leaf:Leaf) DELETE r, leaf")
        return graph

    graph = benchmark(run)
    assert graph.node_count() == 1
