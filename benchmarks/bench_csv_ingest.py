"""P4 -- the CSV ingest pipeline (added).

End-to-end import throughput: generate an order CSV, LOAD CSV it, and
populate the graph with each MERGE flavour.  The qualitative shape: on
duplicate-heavy data MERGE SAME produces the minimal graph, MERGE ALL a
proportionally larger one, and the legacy per-row MERGE lands on the
same *counts* as MERGE SAME here (reading its own writes acts as a
dedup) while remaining order-dependent in general.
"""

import pytest

from repro import Dialect, Graph
from repro.io.csv_io import write_csv
from repro.workloads.generators import OrderTableConfig, order_table


@pytest.fixture(scope="module")
def orders_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("csv") / "orders.csv"
    table = order_table(
        OrderTableConfig(
            rows=1000,
            duplicate_ratio=0.5,
            null_ratio=0.0,
            distinct_users=80,
            distinct_products=40,
        )
    )
    write_csv(
        path,
        table.columns,
        ([record[c] for c in table.columns] for record in table),
    )
    return path


STATEMENT = (
    "LOAD CSV WITH HEADERS FROM '{path}' AS row "
    "MERGE {flavour} (:User {{id: toInteger(row.cid)}})"
    "-[:ORDERED]->(:Product {{id: toInteger(row.pid)}})"
)


def test_ingest_merge_same(benchmark, orders_csv):
    def run():
        graph = Graph(Dialect.REVISED)
        graph.create_index("User", "id")
        graph.create_index("Product", "id")
        graph.run(STATEMENT.format(path=orders_csv, flavour="SAME"))
        return graph

    graph = benchmark(run)
    assert graph.node_count() <= 80 + 40
    benchmark.extra_info["nodes"] = graph.node_count()


def test_ingest_merge_all(benchmark, orders_csv):
    def run():
        graph = Graph(Dialect.REVISED)
        graph.run(STATEMENT.format(path=orders_csv, flavour="ALL"))
        return graph

    graph = benchmark(run)
    assert graph.node_count() == 2000  # one pair per row
    benchmark.extra_info["nodes"] = graph.node_count()


def test_ingest_legacy_merge(benchmark, orders_csv):
    def run():
        graph = Graph(Dialect.CYPHER9)
        graph.create_index("User", "id")
        graph.create_index("Product", "id")
        graph.run(
            f"LOAD CSV WITH HEADERS FROM '{orders_csv}' AS row "
            "MERGE (:User {id: toInteger(row.cid)})"
            "-[:ORDERED]->(:Product {id: toInteger(row.pid)})"
        )
        return graph

    graph = benchmark(run)
    assert graph.node_count() <= 2000
    benchmark.extra_info["nodes"] = graph.node_count()


def test_ingest_two_phase(benchmark, orders_csv):
    """Nodes first, relationships later -- the surveyed best practice."""

    def run():
        graph = Graph(Dialect.REVISED)
        graph.create_index("User", "id")
        graph.create_index("Product", "id")
        graph.run(
            f"LOAD CSV WITH HEADERS FROM '{orders_csv}' AS row "
            "MERGE SAME (:User {id: toInteger(row.cid)})"
        )
        graph.run(
            f"LOAD CSV WITH HEADERS FROM '{orders_csv}' AS row "
            "MERGE SAME (:Product {id: toInteger(row.pid)})"
        )
        graph.run(
            f"LOAD CSV WITH HEADERS FROM '{orders_csv}' AS row "
            "MATCH (u:User {id: toInteger(row.cid)}) "
            "MATCH (p:Product {id: toInteger(row.pid)}) "
            "MERGE SAME (u)-[:ORDERED]->(p)"
        )
        return graph

    graph = benchmark(run)
    assert graph.node_count() <= 80 + 40
    benchmark.extra_info["nodes"] = graph.node_count()
    benchmark.extra_info["relationships"] = graph.relationship_count()
