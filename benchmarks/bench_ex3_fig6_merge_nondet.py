"""E5/E10 -- Example 3 / Figure 6: MERGE nondeterminism and its fix.

Shape checks: the legacy MERGE yields Figure 6b top-down (4 rels) and
Figure 6a bottom-up (6 rels); MERGE ALL always yields 6, MERGE SAME
always 4, across shuffles.
"""

from repro import Dialect, Graph
from repro.graph.comparison import fingerprint
from repro.paper import (
    EXAMPLE_3_MERGE,
    EXAMPLE_3_MERGE_ALL,
    EXAMPLE_3_MERGE_SAME,
    FIGURE_6A_EXPECTED,
    FIGURE_6B_EXPECTED,
    example3_graph,
    example3_table,
)


def _legacy(reorder):
    store = example3_graph()
    graph = Graph(Dialect.CYPHER9, store=store)
    table = example3_table(store)
    graph.run(EXAMPLE_3_MERGE, table=table.reversed() if reorder else table)
    return graph


def test_legacy_top_down(benchmark):
    graph = benchmark(_legacy, False)
    snapshot = graph.snapshot()
    assert (snapshot.order(), snapshot.size()) == FIGURE_6B_EXPECTED


def test_legacy_bottom_up(benchmark):
    graph = benchmark(_legacy, True)
    snapshot = graph.snapshot()
    assert (snapshot.order(), snapshot.size()) == FIGURE_6A_EXPECTED


def _revised(statement, seed):
    store = example3_graph()
    graph = Graph(Dialect.REVISED, store=store)
    graph.run(statement, table=example3_table(store).shuffled(seed))
    return graph


def test_merge_all_deterministic(benchmark):
    def run():
        prints = set()
        for seed in range(10):
            graph = _revised(EXAMPLE_3_MERGE_ALL, seed)
            prints.add(fingerprint(graph.snapshot()))
        return prints, graph

    prints, graph = benchmark(run)
    assert len(prints) == 1
    snapshot = graph.snapshot()
    assert (snapshot.order(), snapshot.size()) == FIGURE_6A_EXPECTED


def test_merge_same_deterministic(benchmark):
    def run():
        prints = set()
        for seed in range(10):
            graph = _revised(EXAMPLE_3_MERGE_SAME, seed)
            prints.add(fingerprint(graph.snapshot()))
        return prints, graph

    prints, graph = benchmark(run)
    assert len(prints) == 1
    snapshot = graph.snapshot()
    assert (snapshot.order(), snapshot.size()) == FIGURE_6B_EXPECTED


def test_legacy_is_genuinely_order_dependent(benchmark):
    def run():
        counts = set()
        for reorder in (False, True):
            counts.add(_legacy(reorder).relationship_count())
        return counts

    counts = benchmark(run)
    assert counts == {4, 6}
